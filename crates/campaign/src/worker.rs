//! The campaign worker: connects to a coordinator, independently rebuilds
//! the campaign plan from the shipped job, and computes leased chunks
//! until told the campaign is done.
//!
//! The worker is deliberately stateless across chunks and paranoid about
//! the job it accepts: it recomputes the golden run, the site enumeration
//! and the dead-definition prediction *from scratch* and refuses the job
//! unless its plan fingerprint matches the coordinator's
//! ([`FabricError::PlanMismatch`]). After that handshake, a spec index
//! means the same fault on both sides by construction, so chunk results
//! need no context beyond their records.
//!
//! ## Resilience
//!
//! Statelessness is also what makes the worker *restartable*: a session
//! that dies — connection reset, corrupted frame, coordinator crash —
//! loses nothing but its current lease, which the coordinator requeues.
//! [`run_worker_with`] therefore wraps the session in a [`Backoff`]-driven
//! reconnect loop: transient failures ([`FabricError::is_transient`])
//! redial and re-handshake, so a fleet survives a coordinator being
//! killed and restarted from a GLVCKPT1 checkpoint; fatal failures
//! (plan mismatch, unplannable job) surface immediately. Every read on
//! the coordinator connection carries a reply deadline — the worker is a
//! strict request/response client, so a silent coordinator is
//! indistinguishable from a dead one and must not wedge the thread.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use glaive_faultsim::{Campaign, InjectionRecord};
use glaive_wire::{
    read_reply_cancellable, sleep_cancellable, write_frame, Backoff, ChaosPlan, ReadOutcome,
    RetryPolicy, Wait,
};

use crate::protocol::{chunk_sub_seed, ToCoordinator, ToWorker};
use crate::FabricError;

/// Socket read timeout: how often a blocked read re-checks cancellation.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// What a worker did before disconnecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Chunks completed and acknowledged.
    pub chunks: u64,
    /// Records simulated (excludes statically predicted indices).
    pub simulated: u64,
    /// Sessions redialled after a transient failure.
    pub reconnects: u64,
    /// Transient failures survived (each one precedes a backoff wait).
    pub retries: u64,
}

/// Tuning for a resilient worker: retry policy, reply deadline, and an
/// optional chaos plan for fault-injection testing of the fabric itself.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Backoff policy across sessions; reset whenever a session makes
    /// progress (completes a chunk), so the budget bounds *consecutive*
    /// failures, not lifetime ones.
    pub retry: RetryPolicy,
    /// How long to wait for the coordinator's reply to any request
    /// before declaring the connection dead. The worker protocol is
    /// strictly request/response: there is no legitimate long silence.
    pub reply_deadline: Duration,
    /// When set, every connection is wrapped in a seeded
    /// [`ChaosTransport`](glaive_wire::ChaosTransport).
    pub chaos: Option<ChaosPlan>,
    /// Base for chaos stream ids: session `n` uses `stream_base + n`, so
    /// reconnections draw fresh fault schedules and concurrent workers
    /// can partition the id space.
    pub stream_base: u64,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            retry: RetryPolicy::default(),
            reply_deadline: Duration::from_secs(10),
            chaos: None,
            stream_base: 0,
        }
    }
}

/// How a session ended without error.
enum SessionEnd {
    /// The coordinator declared the campaign complete.
    Done,
    /// The cancellation flag was raised.
    Cancelled,
}

/// Connects to a coordinator at `addr` and works until the campaign
/// completes (clean [`WorkerReport`]), retries are exhausted, or `cancel`
/// is raised (checked between injections and inside every wait; the
/// connection is dropped and the coordinator requeues the held chunk).
///
/// Equivalent to [`run_worker_with`] under [`WorkerOptions::default`].
///
/// # Errors
///
/// The [`run_worker_with`] error set.
pub fn run_worker(
    addr: &str,
    name: &str,
    cancel: Option<&AtomicBool>,
) -> Result<WorkerReport, FabricError> {
    run_worker_with(addr, name, cancel, WorkerOptions::default())
}

/// [`run_worker`] with explicit [`WorkerOptions`]: the resilient
/// session loop. Transient failures (transport errors, corrupted frames,
/// coordinator refusals) trigger a backoff-paced redial; a coordinator
/// that dies and is restarted with `--resume` is rejoined transparently,
/// with completed work adopted from its checkpoint.
///
/// # Errors
///
/// [`FabricError::RetriesExhausted`] when consecutive transient failures
/// outlast the retry budget (wrapping the last failure);
/// [`FabricError::PlanMismatch`] / [`FabricError::Campaign`] immediately
/// for fatal disagreements about the job itself.
pub fn run_worker_with(
    addr: &str,
    name: &str,
    cancel: Option<&AtomicBool>,
    opts: WorkerOptions,
) -> Result<WorkerReport, FabricError> {
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
    let mut report = WorkerReport::default();
    let mut backoff = Backoff::new(opts.retry);
    let mut session: u64 = 0;
    loop {
        if cancelled() {
            return Ok(report);
        }
        let chunks_before = report.chunks;
        let outcome = dial_session(addr, name, cancel, &opts, session, &mut report);
        match outcome {
            Ok(SessionEnd::Done) | Ok(SessionEnd::Cancelled) => return Ok(report),
            Err(e) if !e.is_transient() => return Err(e),
            Err(e) => {
                if report.chunks > chunks_before {
                    backoff.reset();
                }
                report.retries += 1;
                match backoff.wait(cancel) {
                    Wait::Waited => {
                        report.reconnects += 1;
                        session += 1;
                    }
                    Wait::Cancelled => return Ok(report),
                    Wait::Exhausted => {
                        return Err(FabricError::RetriesExhausted {
                            attempts: backoff.attempts(),
                            last: Box::new(e),
                        })
                    }
                }
            }
        }
    }
}

/// Dials one session (optionally chaos-wrapped) and runs it to its end.
fn dial_session(
    addr: &str,
    name: &str,
    cancel: Option<&AtomicBool>,
    opts: &WorkerOptions,
    session: u64,
    report: &mut WorkerReport,
) -> Result<SessionEnd, FabricError> {
    let stream = TcpStream::connect(addr).map_err(|e| FabricError::Io(e.to_string()))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(opts.reply_deadline));
    match &opts.chaos {
        Some(plan) => {
            let mut wrapped = plan.wrap(stream, opts.stream_base.wrapping_add(session));
            run_session(&mut wrapped, name, cancel, opts.reply_deadline, report)
        }
        None => {
            let mut stream = stream;
            run_session(&mut stream, name, cancel, opts.reply_deadline, report)
        }
    }
}

/// [`run_worker`] over an already-connected stream: exactly one session,
/// no reconnection (used by the in-process fabric and by tests that need
/// hand-crafted sockets).
///
/// # Errors
///
/// [`FabricError::PlanMismatch`] when the locally recomputed plan
/// disagrees with the coordinator's, [`FabricError::Campaign`] when the
/// shipped job cannot even be planned, [`FabricError::Rejected`] when the
/// coordinator refuses a completion, [`FabricError::Protocol`] /
/// [`FabricError::Io`] for wire-level failures.
pub fn run_worker_on(
    mut stream: TcpStream,
    name: &str,
    cancel: Option<&AtomicBool>,
) -> Result<WorkerReport, FabricError> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut report = WorkerReport::default();
    run_session(
        &mut stream,
        name,
        cancel,
        WorkerOptions::default().reply_deadline,
        &mut report,
    )?;
    Ok(report)
}

/// Receives the coordinator's reply to a just-sent request, under the
/// reply deadline. `Ok(None)` means cancellation was raised mid-wait.
fn recv<S: Read>(
    stream: &mut S,
    cancel: Option<&AtomicBool>,
    deadline: Duration,
) -> Result<Option<Vec<u8>>, FabricError> {
    static NEVER: AtomicBool = AtomicBool::new(false);
    match read_reply_cancellable(stream, cancel.unwrap_or(&NEVER), deadline) {
        ReadOutcome::Frame(p) => Ok(Some(p)),
        ReadOutcome::Cancelled => Ok(None),
        ReadOutcome::Closed => Err(FabricError::Io("coordinator hung up".into())),
        ReadOutcome::Failed(e) => Err(FabricError::Protocol(e)),
    }
}

/// One worker session over `stream`: handshake, plan cross-check, then
/// the fetch/compute/complete loop until `Done`, cancellation, or error.
fn run_session<S: Read + Write>(
    stream: &mut S,
    name: &str,
    cancel: Option<&AtomicBool>,
    reply_deadline: Duration,
    report: &mut WorkerReport,
) -> Result<SessionEnd, FabricError> {
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));

    write_frame(
        stream,
        &ToCoordinator::Hello {
            worker: name.to_string(),
        }
        .to_frame(),
    )
    .map_err(|e| FabricError::Io(e.to_string()))?;
    let job = match recv(stream, cancel, reply_deadline)? {
        None => return Ok(SessionEnd::Cancelled),
        Some(payload) => match ToWorker::from_frame(&payload)? {
            ToWorker::Welcome(job) => job,
            ToWorker::Error { message } => return Err(FabricError::Rejected { message }),
            _ => {
                return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                    "expected Welcome",
                )))
            }
        },
    };

    // Rebuild the plan independently and cross-check it. A worker that
    // would disagree about what spec index `i` means must refuse the job.
    let campaign = Campaign::try_new(&job.program, &job.init_mem, job.config())
        .map_err(FabricError::Campaign)?;
    let plan = campaign.plan().map_err(FabricError::Campaign)?;
    if plan.fingerprint != job.fingerprint || plan.specs.len() as u64 != job.total {
        return Err(FabricError::PlanMismatch {
            expected: job.fingerprint,
            actual: plan.fingerprint,
        });
    }
    // Dense predicted-record lookup: chunk computation takes predicted
    // indices from the plan instead of re-simulating provably-Masked
    // faults.
    let mut predicted: Vec<Option<InjectionRecord>> = vec![None; plan.specs.len()];
    for &(i, rec) in &plan.predicted {
        predicted[i] = Some(rec);
    }

    loop {
        if cancelled() {
            return Ok(SessionEnd::Cancelled);
        }
        write_frame(stream, &ToCoordinator::Fetch.to_frame())
            .map_err(|e| FabricError::Io(e.to_string()))?;
        let Some(payload) = recv(stream, cancel, reply_deadline)? else {
            return Ok(SessionEnd::Cancelled);
        };
        match ToWorker::from_frame(&payload)? {
            ToWorker::Assign(a) => {
                // Bounds-check before indexing: an assignment is wire
                // input, and a corrupt span must become a typed error.
                let start = usize::try_from(a.start)
                    .ok()
                    .filter(|&s| s <= plan.specs.len());
                let len = usize::try_from(a.len).ok();
                let (Some(start), Some(len)) = (start, len) else {
                    return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                        "assignment span out of range",
                    )));
                };
                if start + len > plan.specs.len()
                    || a.sub_seed != chunk_sub_seed(plan.fingerprint, a.chunk)
                {
                    return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                        "assignment disagrees with local plan",
                    )));
                }
                let heartbeat_after = Duration::from_millis((a.lease_ms / 3).max(1));
                let mut last_beat = Instant::now();
                let mut records = Vec::with_capacity(len);
                let span = predicted[start..start + len]
                    .iter()
                    .zip(&plan.specs[start..start + len]);
                for (pred, spec) in span {
                    if cancelled() {
                        return Ok(SessionEnd::Cancelled);
                    }
                    let rec = match *pred {
                        Some(rec) => rec,
                        None => {
                            report.simulated += 1;
                            campaign.inject(spec, &plan.golden, &plan.fault_cfg)
                        }
                    };
                    records.push(rec);
                    // Cooperative keep-alive: a chunk that computes longer
                    // than a third of its lease phones home so the lease
                    // never expires under an alive worker.
                    if last_beat.elapsed() >= heartbeat_after {
                        write_frame(
                            stream,
                            &ToCoordinator::Heartbeat { chunk: a.chunk }.to_frame(),
                        )
                        .map_err(|e| FabricError::Io(e.to_string()))?;
                        match recv(stream, cancel, reply_deadline)? {
                            None => return Ok(SessionEnd::Cancelled),
                            Some(payload) => match ToWorker::from_frame(&payload)? {
                                ToWorker::Ack => {}
                                ToWorker::Error { message } => {
                                    return Err(FabricError::Rejected { message })
                                }
                                _ => {
                                    return Err(FabricError::Protocol(
                                        glaive_wire::ProtocolError::Corrupt(
                                            "expected heartbeat Ack",
                                        ),
                                    ))
                                }
                            },
                        }
                        last_beat = Instant::now();
                    }
                }
                write_frame(
                    stream,
                    &ToCoordinator::Complete {
                        chunk: a.chunk,
                        sub_seed: a.sub_seed,
                        records,
                    }
                    .to_frame(),
                )
                .map_err(|e| FabricError::Io(e.to_string()))?;
                match recv(stream, cancel, reply_deadline)? {
                    None => return Ok(SessionEnd::Cancelled),
                    Some(payload) => match ToWorker::from_frame(&payload)? {
                        ToWorker::Ack => report.chunks += 1,
                        ToWorker::Error { message } => {
                            return Err(FabricError::Rejected { message })
                        }
                        ToWorker::Done => {
                            report.chunks += 1;
                            return Ok(SessionEnd::Done);
                        }
                        _ => {
                            return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                                "expected completion Ack",
                            )))
                        }
                    },
                }
            }
            ToWorker::Wait { retry_ms } => {
                // Cancellable wait: a shutdown signal interrupts the
                // coordinator-suggested pause promptly instead of
                // sleeping it out.
                if !sleep_cancellable(Duration::from_millis(retry_ms.min(1000)), cancel) {
                    return Ok(SessionEnd::Cancelled);
                }
            }
            ToWorker::Done => return Ok(SessionEnd::Done),
            ToWorker::Error { message } => return Err(FabricError::Rejected { message }),
            _ => {
                return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                    "unexpected coordinator reply",
                )))
            }
        }
    }
}
