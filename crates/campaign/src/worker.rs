//! The campaign worker: connects to a coordinator, independently rebuilds
//! the campaign plan from the shipped job, and computes leased chunks
//! until told the campaign is done.
//!
//! The worker is deliberately stateless across chunks and paranoid about
//! the job it accepts: it recomputes the golden run, the site enumeration
//! and the dead-definition prediction *from scratch* and refuses the job
//! unless its plan fingerprint matches the coordinator's
//! ([`FabricError::PlanMismatch`]). After that handshake, a spec index
//! means the same fault on both sides by construction, so chunk results
//! need no context beyond their records.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use glaive_faultsim::{Campaign, InjectionRecord};
use glaive_wire::{read_frame, write_frame};

use crate::protocol::{chunk_sub_seed, ToCoordinator, ToWorker};
use crate::FabricError;

/// What a worker did before disconnecting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// Chunks completed and acknowledged.
    pub chunks: u64,
    /// Records simulated (excludes statically predicted indices).
    pub simulated: u64,
}

/// Connects to a coordinator at `addr` and works until the campaign
/// completes (clean [`WorkerReport`]), the coordinator goes away, or
/// `cancel` is raised (checked between injections; the connection is
/// dropped and the coordinator requeues the held chunk).
///
/// # Errors
///
/// [`FabricError::Io`] for connect/transport failures, and the
/// [`run_worker_on`] error set for everything after the connect.
pub fn run_worker(
    addr: &str,
    name: &str,
    cancel: Option<&AtomicBool>,
) -> Result<WorkerReport, FabricError> {
    let stream = TcpStream::connect(addr).map_err(|e| FabricError::Io(e.to_string()))?;
    run_worker_on(stream, name, cancel)
}

/// [`run_worker`] over an already-connected stream (used by the
/// in-process fabric and by tests that need hand-crafted sockets).
///
/// # Errors
///
/// [`FabricError::PlanMismatch`] when the locally recomputed plan
/// disagrees with the coordinator's, [`FabricError::Campaign`] when the
/// shipped job cannot even be planned, [`FabricError::Rejected`] when the
/// coordinator refuses a completion, [`FabricError::Protocol`] /
/// [`FabricError::Io`] for wire-level failures.
pub fn run_worker_on(
    mut stream: TcpStream,
    name: &str,
    cancel: Option<&AtomicBool>,
) -> Result<WorkerReport, FabricError> {
    let _ = stream.set_nodelay(true);
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));

    write_frame(
        &mut stream,
        &ToCoordinator::Hello {
            worker: name.to_string(),
        }
        .to_frame(),
    )
    .map_err(|e| FabricError::Io(e.to_string()))?;
    let job = match ToWorker::from_frame(&read_frame(&mut stream)?)? {
        ToWorker::Welcome(job) => job,
        ToWorker::Error { message } => return Err(FabricError::Rejected { message }),
        _ => {
            return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                "expected Welcome",
            )))
        }
    };

    // Rebuild the plan independently and cross-check it. A worker that
    // would disagree about what spec index `i` means must refuse the job.
    let campaign = Campaign::try_new(&job.program, &job.init_mem, job.config())
        .map_err(FabricError::Campaign)?;
    let plan = campaign.plan().map_err(FabricError::Campaign)?;
    if plan.fingerprint != job.fingerprint || plan.specs.len() as u64 != job.total {
        return Err(FabricError::PlanMismatch {
            expected: job.fingerprint,
            actual: plan.fingerprint,
        });
    }
    // Dense predicted-record lookup: chunk computation takes predicted
    // indices from the plan instead of re-simulating provably-Masked
    // faults.
    let mut predicted: Vec<Option<InjectionRecord>> = vec![None; plan.specs.len()];
    for &(i, rec) in &plan.predicted {
        predicted[i] = Some(rec);
    }

    let mut report = WorkerReport::default();
    loop {
        if cancelled() {
            return Ok(report);
        }
        write_frame(&mut stream, &ToCoordinator::Fetch.to_frame())
            .map_err(|e| FabricError::Io(e.to_string()))?;
        match ToWorker::from_frame(&read_frame(&mut stream)?)? {
            ToWorker::Assign(a) => {
                // Bounds-check before indexing: an assignment is wire
                // input, and a corrupt span must become a typed error.
                let start = usize::try_from(a.start)
                    .ok()
                    .filter(|&s| s <= plan.specs.len());
                let len = usize::try_from(a.len).ok();
                let (Some(start), Some(len)) = (start, len) else {
                    return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                        "assignment span out of range",
                    )));
                };
                if start + len > plan.specs.len()
                    || a.sub_seed != chunk_sub_seed(plan.fingerprint, a.chunk)
                {
                    return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                        "assignment disagrees with local plan",
                    )));
                }
                let heartbeat_after = Duration::from_millis((a.lease_ms / 3).max(1));
                let mut last_beat = Instant::now();
                let mut records = Vec::with_capacity(len);
                let span = predicted[start..start + len]
                    .iter()
                    .zip(&plan.specs[start..start + len]);
                for (pred, spec) in span {
                    if cancelled() {
                        return Ok(report);
                    }
                    let rec = match *pred {
                        Some(rec) => rec,
                        None => {
                            report.simulated += 1;
                            campaign.inject(spec, &plan.golden, &plan.fault_cfg)
                        }
                    };
                    records.push(rec);
                    // Cooperative keep-alive: a chunk that computes longer
                    // than a third of its lease phones home so the lease
                    // never expires under an alive worker.
                    if last_beat.elapsed() >= heartbeat_after {
                        write_frame(
                            &mut stream,
                            &ToCoordinator::Heartbeat { chunk: a.chunk }.to_frame(),
                        )
                        .map_err(|e| FabricError::Io(e.to_string()))?;
                        match ToWorker::from_frame(&read_frame(&mut stream)?)? {
                            ToWorker::Ack => {}
                            ToWorker::Error { message } => {
                                return Err(FabricError::Rejected { message })
                            }
                            _ => {
                                return Err(FabricError::Protocol(
                                    glaive_wire::ProtocolError::Corrupt("expected heartbeat Ack"),
                                ))
                            }
                        }
                        last_beat = Instant::now();
                    }
                }
                write_frame(
                    &mut stream,
                    &ToCoordinator::Complete {
                        chunk: a.chunk,
                        sub_seed: a.sub_seed,
                        records,
                    }
                    .to_frame(),
                )
                .map_err(|e| FabricError::Io(e.to_string()))?;
                match ToWorker::from_frame(&read_frame(&mut stream)?)? {
                    ToWorker::Ack => report.chunks += 1,
                    ToWorker::Error { message } => return Err(FabricError::Rejected { message }),
                    ToWorker::Done => {
                        report.chunks += 1;
                        return Ok(report);
                    }
                    _ => {
                        return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                            "expected completion Ack",
                        )))
                    }
                }
            }
            ToWorker::Wait { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.min(1000)));
            }
            ToWorker::Done => return Ok(report),
            ToWorker::Error { message } => return Err(FabricError::Rejected { message }),
            _ => {
                return Err(FabricError::Protocol(glaive_wire::ProtocolError::Corrupt(
                    "unexpected coordinator reply",
                )))
            }
        }
    }
}
