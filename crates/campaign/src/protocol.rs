//! The `GLVCMP01` campaign-fabric wire protocol.
//!
//! Frames ride the shared [`glaive_wire`] codec — `u32` length prefix,
//! 8-byte magic, opcode, body, trailing FNV-1a checksum — exactly like the
//! `GLVSRV01` inference protocol, so one audited framing layer covers both
//! services. Decoders never panic on foreign bytes: every malformed frame
//! maps to a typed [`ProtocolError`].
//!
//! The conversation is strictly worker-initiated request/response:
//!
//! ```text
//! worker                         coordinator
//!   Hello{name}              →
//!                            ←   Welcome{job}            (or Error)
//!   Fetch                    →
//!                            ←   Assign{chunk}/Wait/Done
//!   Heartbeat{chunk}         →
//!                            ←   Ack                     (lease extended)
//!   Complete{chunk,seed,recs}→
//!                            ←   Ack                     (or Error)
//! ```
//!
//! A [`CampaignJob`] ships everything a worker needs to *recompute the
//! coordinator's campaign plan from scratch* — program, input image,
//! campaign parameters — plus the plan fingerprint the worker must arrive
//! at independently. Records therefore never need golden-run context on
//! the wire, and a worker that would disagree about what any spec index
//! means refuses the job instead of corrupting the merge.

use glaive_faultsim::{BitSite, CampaignConfig, InjectionRecord};
use glaive_isa::{Instr, Program, INSTR_ENCODING_LEN};
use glaive_sim::{OperandSlot, Outcome};
use glaive_wire::Reader;

pub use glaive_wire::{
    fnv1a, read_frame, write_frame, Frame, FrameBuilder, ProtocolError, MAX_FRAME_LEN,
};

/// Magic + format version of every campaign-fabric frame.
pub const MAGIC: &[u8; 8] = b"GLVCMP01";

const NAME_CAP: usize = 1 << 12;
const INSTR_CAP: usize = 1 << 20;
const MEM_CAP: usize = 1 << 22;
const RECORD_CAP: usize = 1 << 24;

/// Encoded size of one [`InjectionRecord`]: pc + slot tag + slot index +
/// bit + instance + outcome label.
const RECORD_LEN: usize = 8 + 1 + 8 + 1 + 8 + 1;

/// Everything a worker needs to reconstruct the campaign plan locally.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignJob {
    /// Fingerprint of the coordinator's [`glaive_faultsim::CampaignPlan`];
    /// the worker recomputes its own plan and must arrive at this value.
    pub fingerprint: u64,
    /// Total fault specs in the campaign (cross-checked like the
    /// fingerprint).
    pub total: u64,
    /// The program under campaign.
    pub program: Program,
    /// Initial memory image.
    pub init_mem: Vec<u64>,
    /// Bit stride of the site enumeration.
    pub bit_stride: u64,
    /// Dynamic instances sampled per fault-site class.
    pub instances_per_site: u64,
    /// Hang-detection budget multiplier.
    pub hang_factor: u64,
    /// Whether dead-definition outcomes are statically predicted.
    pub predict_dead_defs: bool,
}

impl CampaignJob {
    /// The campaign configuration the worker must plan with. `threads` is
    /// pinned to 1: parallelism lives in the fleet, not inside a worker.
    pub fn config(&self) -> CampaignConfig {
        CampaignConfig {
            bit_stride: self.bit_stride as usize,
            instances_per_site: self.instances_per_site as usize,
            hang_factor: self.hang_factor,
            threads: 1,
            predict_dead_defs: self.predict_dead_defs,
        }
    }
}

/// One lease-bounded unit of work: a contiguous span of spec indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkAssignment {
    /// Canonical chunk id (also its position in merge order).
    pub chunk: u64,
    /// First spec index of the chunk.
    pub start: u64,
    /// Number of specs in the chunk.
    pub len: u64,
    /// Sub-seed derived from the campaign fingerprint + chunk id; echoed
    /// back in [`ToCoordinator::Complete`] as a provenance token binding
    /// the completion to this campaign.
    pub sub_seed: u64,
    /// Lease duration: a chunk with no completion or heartbeat within
    /// this window is reassigned.
    pub lease_ms: u64,
}

/// A worker→coordinator frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ToCoordinator {
    /// Registration: first frame on every connection.
    Hello {
        /// Worker display name (diagnostics only).
        worker: String,
    },
    /// Request a chunk assignment.
    Fetch,
    /// Keep-alive for a long-running chunk; extends its lease.
    Heartbeat {
        /// The chunk still being computed.
        chunk: u64,
    },
    /// A finished chunk: one record per spec index in `chunk`, in spec
    /// order.
    Complete {
        /// The chunk these records cover.
        chunk: u64,
        /// Echo of the assignment's sub-seed (provenance check).
        sub_seed: u64,
        /// One record per spec of the chunk, in canonical spec order.
        records: Vec<InjectionRecord>,
    },
}

/// A coordinator→worker frame.
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Reply to [`ToCoordinator::Hello`]: the job description.
    Welcome(CampaignJob),
    /// Reply to [`ToCoordinator::Fetch`]: a chunk to compute.
    Assign(ChunkAssignment),
    /// Reply to [`ToCoordinator::Fetch`] when every remaining chunk is
    /// leased out: retry after `retry_ms`.
    Wait {
        /// Suggested backoff before the next `Fetch`.
        retry_ms: u64,
    },
    /// Reply to [`ToCoordinator::Fetch`] once the campaign is complete:
    /// the worker may disconnect.
    Done,
    /// Positive acknowledgement of a heartbeat or completion.
    Ack,
    /// The request was rejected (mismatched campaign, malformed chunk,
    /// coordinator shutting down). The connection stays usable.
    Error {
        /// Human-readable rejection detail.
        message: String,
    },
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

const OP_HELLO: u8 = 0x01;
const OP_FETCH: u8 = 0x02;
const OP_HEARTBEAT: u8 = 0x03;
const OP_COMPLETE: u8 = 0x04;
const OP_R_WELCOME: u8 = 0x81;
const OP_R_ASSIGN: u8 = 0x82;
const OP_R_WAIT: u8 = 0x83;
const OP_R_DONE: u8 = 0x84;
const OP_R_ACK: u8 = 0x85;
const OP_R_ERROR: u8 = 0xff;

/// Validates the `GLVCMP01` magic and checksum, returning a reader over
/// the body (opcode onwards).
fn open(payload: &[u8]) -> Result<Reader<'_>, ProtocolError> {
    glaive_wire::open(payload, MAGIC)
}

fn put_record(b: &mut FrameBuilder, rec: &InjectionRecord) {
    b.u64(rec.site.pc as u64);
    match rec.site.slot {
        OperandSlot::Use(i) => b.u8(0).u64(i as u64),
        OperandSlot::Def(i) => b.u8(1).u64(i as u64),
    };
    b.u8(rec.site.bit)
        .u64(rec.instance)
        .u8(rec.outcome.label() as u8);
}

fn read_record(r: &mut Reader<'_>) -> Result<InjectionRecord, ProtocolError> {
    let pc = usize::try_from(r.u64()?).map_err(|_| ProtocolError::Corrupt("pc overflows usize"))?;
    let tag = r.u8()?;
    let idx =
        usize::try_from(r.u64()?).map_err(|_| ProtocolError::Corrupt("slot overflows usize"))?;
    let slot = match tag {
        0 => OperandSlot::Use(idx),
        1 => OperandSlot::Def(idx),
        _ => return Err(ProtocolError::Corrupt("unknown operand-slot tag")),
    };
    let bit = r.u8()?;
    let instance = r.u64()?;
    let outcome = Outcome::from_label(r.u8()? as usize)
        .ok_or(ProtocolError::Corrupt("unknown outcome label"))?;
    Ok(InjectionRecord {
        site: BitSite { pc, slot, bit },
        instance,
        outcome,
    })
}

impl ToCoordinator {
    /// Serialises into a sealed [`Frame`] ([`write_frame`] adds the
    /// length prefix).
    pub fn to_frame(&self) -> Frame {
        let mut b = FrameBuilder::new(MAGIC);
        match self {
            ToCoordinator::Hello { worker } => {
                b.u8(OP_HELLO).str(worker);
            }
            ToCoordinator::Fetch => {
                b.u8(OP_FETCH);
            }
            ToCoordinator::Heartbeat { chunk } => {
                b.u8(OP_HEARTBEAT).u64(*chunk);
            }
            ToCoordinator::Complete {
                chunk,
                sub_seed,
                records,
            } => {
                b.u8(OP_COMPLETE)
                    .u64(*chunk)
                    .u64(*sub_seed)
                    .u32(records.len() as u32);
                for rec in records {
                    put_record(&mut b, rec);
                }
            }
        }
        b.seal()
    }

    /// Decodes a sealed worker→coordinator payload.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for anything that is not an intact
    /// current-version frame.
    pub fn from_frame(payload: &[u8]) -> Result<ToCoordinator, ProtocolError> {
        let mut r = open(payload)?;
        let msg = match r.u8()? {
            OP_HELLO => ToCoordinator::Hello {
                worker: r.string(NAME_CAP)?,
            },
            OP_FETCH => ToCoordinator::Fetch,
            OP_HEARTBEAT => ToCoordinator::Heartbeat { chunk: r.u64()? },
            OP_COMPLETE => {
                let chunk = r.u64()?;
                let sub_seed = r.u64()?;
                let count = r.u32()? as usize;
                if count > RECORD_CAP {
                    return Err(ProtocolError::Corrupt("record count exceeds cap"));
                }
                let mut records = Vec::with_capacity(count.min(r.remaining() / RECORD_LEN + 1));
                for _ in 0..count {
                    records.push(read_record(&mut r)?);
                }
                ToCoordinator::Complete {
                    chunk,
                    sub_seed,
                    records,
                }
            }
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl ToWorker {
    /// Serialises into a sealed [`Frame`] ([`write_frame`] adds the
    /// length prefix).
    pub fn to_frame(&self) -> Frame {
        let mut b = FrameBuilder::new(MAGIC);
        match self {
            ToWorker::Welcome(job) => {
                b.u8(OP_R_WELCOME)
                    .u64(job.fingerprint)
                    .u64(job.total)
                    .u64(job.bit_stride)
                    .u64(job.instances_per_site)
                    .u64(job.hang_factor)
                    .u8(job.predict_dead_defs as u8)
                    .str(job.program.name())
                    .u64(job.program.mem_words() as u64)
                    .u32(job.program.len() as u32);
                for instr in job.program.instrs() {
                    b.raw(&instr.encode());
                }
                b.u32(job.init_mem.len() as u32);
                for &w in &job.init_mem {
                    b.u64(w);
                }
            }
            ToWorker::Assign(a) => {
                b.u8(OP_R_ASSIGN)
                    .u64(a.chunk)
                    .u64(a.start)
                    .u64(a.len)
                    .u64(a.sub_seed)
                    .u64(a.lease_ms);
            }
            ToWorker::Wait { retry_ms } => {
                b.u8(OP_R_WAIT).u64(*retry_ms);
            }
            ToWorker::Done => {
                b.u8(OP_R_DONE);
            }
            ToWorker::Ack => {
                b.u8(OP_R_ACK);
            }
            ToWorker::Error { message } => {
                b.u8(OP_R_ERROR).str(message);
            }
        }
        b.seal()
    }

    /// Decodes a sealed coordinator→worker payload.
    ///
    /// # Errors
    ///
    /// A typed [`ProtocolError`] for anything that is not an intact
    /// current-version frame.
    pub fn from_frame(payload: &[u8]) -> Result<ToWorker, ProtocolError> {
        let mut r = open(payload)?;
        let msg = match r.u8()? {
            OP_R_WELCOME => {
                let fingerprint = r.u64()?;
                let total = r.u64()?;
                let bit_stride = r.u64()?;
                let instances_per_site = r.u64()?;
                let hang_factor = r.u64()?;
                let predict_dead_defs = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(ProtocolError::Corrupt("bad predict flag")),
                };
                let name = r.string(NAME_CAP)?;
                let mem_words = usize::try_from(r.u64()?)
                    .map_err(|_| ProtocolError::Corrupt("mem_words overflows usize"))?;
                let count = r.u32()? as usize;
                if count > INSTR_CAP {
                    return Err(ProtocolError::Corrupt("instruction count exceeds cap"));
                }
                let mut instrs =
                    Vec::with_capacity(count.min(r.remaining() / INSTR_ENCODING_LEN + 1));
                for _ in 0..count {
                    let bytes: [u8; INSTR_ENCODING_LEN] = r
                        .take(INSTR_ENCODING_LEN)?
                        .try_into()
                        .expect("take returned the requested length");
                    instrs.push(
                        Instr::decode(&bytes)
                            .map_err(|_| ProtocolError::Corrupt("undecodable instruction"))?,
                    );
                }
                // Validate branch/jump targets here — `Program::new` would
                // panic on a dangling target a checksummed frame can carry.
                let program = Program::try_new(name, instrs, mem_words)
                    .map_err(|_| ProtocolError::Corrupt("branch/jump target out of range"))?;
                let words = r.counted(8)?;
                if words > MEM_CAP {
                    return Err(ProtocolError::Corrupt("memory image exceeds cap"));
                }
                let mut init_mem = Vec::with_capacity(words);
                for _ in 0..words {
                    init_mem.push(r.u64()?);
                }
                ToWorker::Welcome(CampaignJob {
                    fingerprint,
                    total,
                    program,
                    init_mem,
                    bit_stride,
                    instances_per_site,
                    hang_factor,
                    predict_dead_defs,
                })
            }
            OP_R_ASSIGN => ToWorker::Assign(ChunkAssignment {
                chunk: r.u64()?,
                start: r.u64()?,
                len: r.u64()?,
                sub_seed: r.u64()?,
                lease_ms: r.u64()?,
            }),
            OP_R_WAIT => ToWorker::Wait { retry_ms: r.u64()? },
            OP_R_DONE => ToWorker::Done,
            OP_R_ACK => ToWorker::Ack,
            OP_R_ERROR => ToWorker::Error {
                message: r.string(1 << 16)?,
            },
            other => return Err(ProtocolError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// The per-chunk RNG sub-seed: a SplitMix64 finalisation of the campaign
/// fingerprint and the chunk id.
///
/// Both sides derive it independently — the coordinator stamps it on the
/// assignment and validates the echo in every completion, so a completion
/// can only merge into the campaign whose plan produced it. (Injection
/// simulation is currently fully deterministic; the sub-seed reserves the
/// seeding discipline for future stochastic sampling without a protocol
/// bump.)
pub fn chunk_sub_seed(fingerprint: u64, chunk: u64) -> u64 {
    let mut z = fingerprint ^ chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, Reg};

    fn tiny_program() -> Program {
        let mut asm = Asm::new("tiny");
        asm.set_mem_words(4);
        asm.li(Reg(1), 7)
            .alu_imm(AluOp::Add, Reg(2), Reg(1), 3)
            .store(Reg(2), Reg(0), 0)
            .out(Reg(2))
            .halt();
        asm.finish().expect("assembles")
    }

    fn sample_records() -> Vec<InjectionRecord> {
        vec![
            InjectionRecord {
                site: BitSite {
                    pc: 0,
                    slot: OperandSlot::Def(0),
                    bit: 3,
                },
                instance: 0,
                outcome: Outcome::Masked,
            },
            InjectionRecord {
                site: BitSite {
                    pc: 2,
                    slot: OperandSlot::Use(1),
                    bit: 63,
                },
                instance: 9,
                outcome: Outcome::Crash,
            },
        ]
    }

    fn sample_to_coordinator() -> Vec<ToCoordinator> {
        vec![
            ToCoordinator::Hello {
                worker: "w0".into(),
            },
            ToCoordinator::Fetch,
            ToCoordinator::Heartbeat { chunk: 5 },
            ToCoordinator::Complete {
                chunk: 5,
                sub_seed: 0xdead_beef,
                records: sample_records(),
            },
        ]
    }

    fn sample_to_worker() -> Vec<ToWorker> {
        vec![
            ToWorker::Welcome(CampaignJob {
                fingerprint: 0x1234_5678_9abc_def0,
                total: 1024,
                program: tiny_program(),
                init_mem: vec![1, 2, 3],
                bit_stride: 8,
                instances_per_site: 1,
                hang_factor: 4,
                predict_dead_defs: true,
            }),
            ToWorker::Assign(ChunkAssignment {
                chunk: 3,
                start: 192,
                len: 64,
                sub_seed: 42,
                lease_ms: 5000,
            }),
            ToWorker::Wait { retry_ms: 25 },
            ToWorker::Done,
            ToWorker::Ack,
            ToWorker::Error {
                message: "wrong campaign".into(),
            },
        ]
    }

    #[test]
    fn worker_frames_roundtrip() {
        for msg in sample_to_coordinator() {
            let frame = msg.to_frame();
            assert_eq!(
                ToCoordinator::from_frame(frame.bytes()).expect("roundtrip"),
                msg
            );
        }
    }

    #[test]
    fn coordinator_frames_roundtrip() {
        for msg in sample_to_worker() {
            let frame = msg.to_frame();
            assert_eq!(ToWorker::from_frame(frame.bytes()).expect("roundtrip"), msg);
        }
    }

    #[test]
    fn foreign_magic_is_rejected() {
        let frame = ToCoordinator::Fetch.to_frame();
        assert_eq!(
            ToWorker::from_frame(&frame.bytes()[..7]),
            Err(ProtocolError::Truncated)
        );
        // A GLVSRV01-style prefix is a different protocol, not garbage.
        let mut other = frame.into_bytes();
        other[..8].copy_from_slice(b"GLVSRV01");
        assert_eq!(
            ToCoordinator::from_frame(&other),
            Err(ProtocolError::BadMagic)
        );
    }

    #[test]
    fn dangling_branch_target_in_welcome_is_typed_error() {
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(OP_R_WELCOME);
        for v in [1u64, 128, 8, 1, 4] {
            b.u64(v);
        }
        b.u8(1) // predict_dead_defs
            .str("evil")
            .u64(4) // mem_words
            .u32(1) // instruction count
            .raw(&Instr::Jump { target: 1000 }.encode())
            .u32(0); // init_mem
        let frame = b.seal();
        assert_eq!(
            ToWorker::from_frame(frame.bytes()),
            Err(ProtocolError::Corrupt("branch/jump target out of range"))
        );
    }

    #[test]
    fn sub_seed_depends_on_fingerprint_and_chunk() {
        let a = chunk_sub_seed(1, 0);
        let b = chunk_sub_seed(1, 1);
        let c = chunk_sub_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, chunk_sub_seed(1, 0), "deterministic");
    }
}
