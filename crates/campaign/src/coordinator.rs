//! The campaign coordinator: owns the canonical [`CampaignPlan`], shards
//! its spec space into fixed chunks, leases chunks to TCP workers, and
//! merges completions back into canonical order.
//!
//! ## Scheduling model
//!
//! The injection space is cut into chunks of `chunk_size` consecutive spec
//! indices — chunk `k` covers `[k·size, min((k+1)·size, total))`, a pure
//! function of the plan, never of worker behaviour. Each chunk is in one
//! of three states: *pending* (queued for assignment), *leased* (assigned,
//! with an expiry instant), or *done* (merged). A lease is extended by a
//! worker heartbeat; a lease that expires, or whose connection drops,
//! sends the chunk back to pending. Duplicate completions (a slow worker
//! finishing after its chunk was reassigned and completed) are
//! acknowledged and discarded — records merge at most once per index.
//!
//! ## Determinism
//!
//! Merged records land in a dense `Vec<Option<InjectionRecord>>` indexed
//! by spec index, so assembly order is the canonical enumeration order no
//! matter which worker finished which chunk when. Combined with each
//! worker recomputing the same plan (enforced by the fingerprint
//! handshake) and validating completions against the coordinator's own
//! specs, the resulting [`GroundTruth`] is bit-identical to a serial
//! single-process campaign of the same configuration — including its
//! GLVFIT01 serialisation and GLVCKPT1 checkpoints.

use std::collections::VecDeque;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use glaive_faultsim::{
    Campaign, CampaignCheckpoint, CampaignConfig, CampaignError, CampaignPlan, GroundTruth,
    InjectionRecord, InterruptReason, RunControl,
};
use glaive_isa::Program;
use glaive_sim::FaultSpec;
use glaive_wire::{read_frame_cancellable, write_frame, ReadOutcome};

use crate::protocol::{chunk_sub_seed, CampaignJob, ChunkAssignment, ToCoordinator, ToWorker};
use crate::FabricError;

/// How often blocking points re-check the finish/cancel state.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Fabric-level tuning knobs, orthogonal to the campaign parameters that
/// define the ground truth (those live in [`CampaignConfig`] and are part
/// of the plan fingerprint; these are not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricConfig {
    /// Spec indices per work unit. Smaller chunks re-do less work after a
    /// worker death; larger chunks amortise protocol overhead.
    pub chunk_size: usize,
    /// Lease duration per assignment; heartbeats extend it.
    pub lease: Duration,
    /// Backoff suggested to workers when every remaining chunk is leased.
    pub retry_ms: u64,
    /// Mid-frame progress deadline on every fabric socket: a peer that
    /// starts a frame must keep bytes flowing, or the read fails with a
    /// typed error (and writes time out likewise) instead of wedging a
    /// handler thread forever. Idle connections between frames are exempt.
    pub stall: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            chunk_size: 64,
            lease: Duration::from_secs(5),
            retry_ms: 25,
            stall: Duration::from_secs(5),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChunkState {
    Pending,
    Leased(Instant),
    Done,
}

/// Mutable scheduling state, shared between connection handlers under one
/// mutex. Critical sections only move chunk states and copy records —
/// simulation work happens in the workers.
struct Scheduler {
    state: Vec<ChunkState>,
    pending: VecDeque<usize>,
    records: Vec<Option<InjectionRecord>>,
    /// Newly merged simulated records (checkpoint payload; excludes
    /// predicted and checkpoint-adopted indices).
    fresh: Vec<(usize, InjectionRecord)>,
    filled: usize,
}

impl Scheduler {
    fn complete(&self) -> bool {
        self.filled == self.records.len()
    }

    /// Requeues every chunk whose lease expired before `now`.
    fn requeue_expired(&mut self, now: Instant) {
        for (chunk, st) in self.state.iter_mut().enumerate() {
            if matches!(*st, ChunkState::Leased(expiry) if expiry <= now) {
                *st = ChunkState::Pending;
                self.pending.push_back(chunk);
            }
        }
    }

    /// Returns a chunk to its queue after a failed or abandoned lease.
    fn release(&mut self, chunk: usize) {
        if matches!(self.state[chunk], ChunkState::Leased(_)) {
            self.state[chunk] = ChunkState::Pending;
            // Front of the queue: an abandoned chunk is the oldest work.
            self.pending.push_front(chunk);
        }
    }
}

/// A distributed fault-injection campaign coordinator.
///
/// Construction mirrors [`Campaign::try_new`]; [`Coordinator::run`]
/// drives the campaign over a listener instead of an in-process thread
/// pool.
pub struct Coordinator<'p> {
    program: &'p Program,
    init_mem: &'p [u64],
    config: CampaignConfig,
    fabric: FabricConfig,
}

impl<'p> Coordinator<'p> {
    /// Creates a coordinator for `program` with the given input image.
    /// `config.threads` is ignored — parallelism comes from the fleet.
    ///
    /// # Errors
    ///
    /// [`FabricError::InvalidConfig`] for a zero `chunk_size` or
    /// `retry_ms`, or a zero-length lease (which would instantly expire
    /// every assignment).
    pub fn try_new(
        program: &'p Program,
        init_mem: &'p [u64],
        config: CampaignConfig,
        fabric: FabricConfig,
    ) -> Result<Self, FabricError> {
        if fabric.chunk_size < 1 {
            return Err(FabricError::InvalidConfig {
                field: "chunk_size",
            });
        }
        if fabric.lease.is_zero() {
            return Err(FabricError::InvalidConfig { field: "lease" });
        }
        if fabric.retry_ms < 1 {
            return Err(FabricError::InvalidConfig { field: "retry_ms" });
        }
        if fabric.stall.is_zero() {
            return Err(FabricError::InvalidConfig { field: "stall" });
        }
        Ok(Coordinator {
            program,
            init_mem,
            config,
            fabric,
        })
    }

    /// Runs the distributed campaign over `listener` until every chunk is
    /// merged, honouring `ctrl` exactly like [`Campaign::run_supervised`]:
    /// progress callbacks, cooperative cancellation, deadline, and
    /// GLVCKPT1 checkpointing (interoperable with serial checkpoints —
    /// the fingerprint formula is shared, so a serial run can resume a
    /// distributed one and vice versa).
    ///
    /// # Errors
    ///
    /// [`FabricError::Campaign`] for plan failures and interruptions
    /// (after saving a final checkpoint), [`FabricError::Io`] for listener
    /// failures, [`FabricError::Truth`] if the merged parts cannot form a
    /// `GroundTruth`. Worker misbehaviour is *not* an error here: a
    /// malformed completion is rejected over the wire, its chunk requeued.
    pub fn run(
        &self,
        listener: TcpListener,
        ctrl: &RunControl<'_>,
    ) -> Result<GroundTruth, FabricError> {
        let name = self.program.name().to_string();
        let plan = Campaign::try_new(self.program, self.init_mem, self.config)
            .and_then(|campaign| campaign.plan())
            .map_err(FabricError::Campaign)?;
        let total = plan.specs.len();
        let n_chunks = total.div_ceil(self.fabric.chunk_size.max(1));

        let mut records: Vec<Option<InjectionRecord>> = vec![None; total];
        for &(i, rec) in &plan.predicted {
            records[i] = Some(rec);
        }

        // Resume: adopt simulated records from a matching snapshot, same
        // as the serial path.
        let mut base: Vec<(usize, InjectionRecord)> = Vec::new();
        if let Some(sink) = ctrl.checkpoint {
            if let Some(ckpt) = sink.load().and_then(|b| CampaignCheckpoint::from_bytes(&b)) {
                if ckpt.fingerprint == plan.fingerprint && ckpt.total == total {
                    for (i, rec) in ckpt.records {
                        if records[i].is_none() {
                            records[i] = Some(rec);
                            base.push((i, rec));
                        }
                    }
                }
            }
        }

        // A chunk every index of which is already filled (predicted and/or
        // checkpoint-adopted) needs no worker at all.
        let filled = records.iter().filter(|r| r.is_some()).count();
        let mut state = Vec::with_capacity(n_chunks);
        let mut pending = VecDeque::new();
        for chunk in 0..n_chunks {
            let (start, end) = self.chunk_span(chunk, total);
            if records[start..end].iter().all(Option::is_some) {
                state.push(ChunkState::Done);
            } else {
                state.push(ChunkState::Pending);
                pending.push_back(chunk);
            }
        }

        let sched = Mutex::new(Scheduler {
            state,
            pending,
            records,
            fresh: Vec::new(),
            filled,
        });
        let finished = AtomicBool::new(false);
        let interrupt: Mutex<Option<InterruptReason>> = Mutex::new(None);
        let welcome = ToWorker::Welcome(CampaignJob {
            fingerprint: plan.fingerprint,
            total: total as u64,
            program: self.program.clone(),
            init_mem: self.init_mem.to_vec(),
            bit_stride: self.config.bit_stride as u64,
            instances_per_site: self.config.instances_per_site as u64,
            hang_factor: self.config.hang_factor,
            predict_dead_defs: self.config.predict_dead_defs,
        })
        .to_frame();

        listener.set_nonblocking(true)?;

        let snapshot = |fresh: &[(usize, InjectionRecord)]| {
            let mut recs: Vec<(usize, InjectionRecord)> =
                base.iter().chain(fresh.iter()).copied().collect();
            recs.sort_unstable_by_key(|&(i, _)| i);
            CampaignCheckpoint {
                fingerprint: plan.fingerprint,
                total,
                records: recs,
            }
            .to_bytes()
        };

        std::thread::scope(|scope| {
            let mut last_saved = 0usize;
            loop {
                if sched.lock().expect("scheduler lock").complete() {
                    finished.store(true, Ordering::Relaxed);
                    break;
                }
                if let Some(reason) = ctrl.interruption() {
                    interrupt
                        .lock()
                        .expect("interrupt lock")
                        .get_or_insert(reason);
                    finished.store(true, Ordering::Relaxed);
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let sched = &sched;
                        let finished = &finished;
                        let plan = &plan;
                        let welcome = &welcome;
                        let fabric = self.fabric;
                        let total_copy = total;
                        let interrupt = &interrupt;
                        scope.spawn(move || {
                            handle_connection(
                                stream, sched, finished, interrupt, plan, welcome, fabric,
                                total_copy, ctrl,
                            );
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        interrupt
                            .lock()
                            .expect("interrupt lock")
                            .get_or_insert(InterruptReason::Cancelled);
                        finished.store(true, Ordering::Relaxed);
                        let _ = e;
                        break;
                    }
                }
                if let Some(sink) = ctrl.checkpoint {
                    if ctrl.checkpoint_interval > 0 {
                        let snap = {
                            let s = sched.lock().expect("scheduler lock");
                            (s.fresh.len() >= last_saved + ctrl.checkpoint_interval)
                                .then(|| (s.fresh.len(), snapshot(&s.fresh)))
                        };
                        if let Some((len, bytes)) = snap {
                            sink.save(&bytes);
                            last_saved = len;
                        }
                    }
                }
            }
        });

        let sched = sched.into_inner().expect("scheduler lock");
        if let Some(reason) = interrupt.into_inner().expect("interrupt lock") {
            if let Some(sink) = ctrl.checkpoint {
                sink.save(&snapshot(&sched.fresh));
            }
            return Err(FabricError::Campaign(CampaignError::Interrupted {
                program: name,
                reason,
                completed: sched.filled,
                total,
            }));
        }
        ctrl.progress.injections(total, total);

        let records: Vec<InjectionRecord> = sched
            .records
            .into_iter()
            .map(|r| r.expect("scheduler completed every chunk"))
            .collect();
        GroundTruth::from_parts(name, records, plan.golden, plan.predicted.len())
            .map_err(FabricError::Truth)
    }

    /// `[start, end)` spec span of chunk `chunk`.
    fn chunk_span(&self, chunk: usize, total: usize) -> (usize, usize) {
        let start = chunk * self.fabric.chunk_size;
        (start, (start + self.fabric.chunk_size).min(total))
    }
}

/// Serves one worker connection until the campaign finishes or the peer
/// hangs up. Never panics on wire input: hostile frames get a typed
/// `Error` reply and the connection is dropped, with any held lease
/// released.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    mut stream: TcpStream,
    sched: &Mutex<Scheduler>,
    finished: &AtomicBool,
    interrupt: &Mutex<Option<InterruptReason>>,
    plan: &CampaignPlan,
    welcome: &glaive_wire::Frame,
    fabric: FabricConfig,
    total: usize,
    ctrl: &RunControl<'_>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    // A worker that stops draining its socket mid-reply must not pin this
    // handler (and its held lease) forever: writes get a hard deadline.
    let _ = stream.set_write_timeout(Some(fabric.stall));
    // The chunk this connection currently holds a lease on. At most one:
    // the protocol is strict fetch → complete.
    let mut held: Option<usize> = None;

    loop {
        let payload = match read_frame_cancellable(&mut stream, finished, Some(fabric.stall)) {
            ReadOutcome::Frame(p) => p,
            ReadOutcome::Cancelled => {
                // Campaign over (complete or interrupted). Tell a worker
                // that asks again; otherwise just hang up.
                if sched.lock().expect("scheduler lock").complete() {
                    let _ = write_frame(&mut stream, &ToWorker::Done.to_frame());
                }
                break;
            }
            ReadOutcome::Closed | ReadOutcome::Failed(_) => break,
        };
        let reply = match ToCoordinator::from_frame(&payload) {
            Ok(ToCoordinator::Hello { .. }) => {
                if write_frame(&mut stream, welcome).is_err() {
                    break;
                }
                continue;
            }
            Ok(ToCoordinator::Fetch) => {
                // Cancellation is enforced here, at chunk granularity: the
                // accept loop's poll interval alone is far too coarse for
                // short campaigns, exactly as in the serial parallel path
                // where the workers themselves check at chunk boundaries.
                if let Some(reason) = ctrl.interruption() {
                    interrupt
                        .lock()
                        .expect("interrupt lock")
                        .get_or_insert(reason);
                    finished.store(true, Ordering::Relaxed);
                    let _ = write_frame(
                        &mut stream,
                        &ToWorker::Error {
                            message: "campaign interrupted".into(),
                        }
                        .to_frame(),
                    );
                    break;
                }
                let mut s = sched.lock().expect("scheduler lock");
                if s.complete() {
                    ToWorker::Done
                } else {
                    s.requeue_expired(Instant::now());
                    // Skip stale queue entries: a chunk can complete (via a
                    // late original holder) after expiry already requeued
                    // it, leaving a Done chunk in the pending queue.
                    let next = loop {
                        match s.pending.pop_front() {
                            Some(c) if s.state[c] == ChunkState::Pending => break Some(c),
                            Some(_) => continue,
                            None => break None,
                        }
                    };
                    match next {
                        Some(chunk) => {
                            s.state[chunk] = ChunkState::Leased(Instant::now() + fabric.lease);
                            held = Some(chunk);
                            let start = chunk * fabric.chunk_size;
                            let len = fabric.chunk_size.min(total - start);
                            ToWorker::Assign(ChunkAssignment {
                                chunk: chunk as u64,
                                start: start as u64,
                                len: len as u64,
                                sub_seed: chunk_sub_seed(plan.fingerprint, chunk as u64),
                                lease_ms: fabric.lease.as_millis() as u64,
                            })
                        }
                        None => ToWorker::Wait {
                            retry_ms: fabric.retry_ms,
                        },
                    }
                }
            }
            Ok(ToCoordinator::Heartbeat { chunk }) => {
                let mut s = sched.lock().expect("scheduler lock");
                if let Some(st) = s.state.get_mut(chunk as usize) {
                    if matches!(*st, ChunkState::Leased(_)) {
                        *st = ChunkState::Leased(Instant::now() + fabric.lease);
                    }
                }
                ToWorker::Ack
            }
            Ok(ToCoordinator::Complete {
                chunk,
                sub_seed,
                records,
            }) => {
                let reply =
                    merge_completion(sched, plan, fabric, total, chunk, sub_seed, &records, ctrl);
                if held == Some(chunk as usize) {
                    held = None;
                }
                reply
            }
            Err(err) => {
                // A hostile or corrupt frame: reject, release any lease,
                // and drop the connection — the stream state is suspect.
                let _ = write_frame(
                    &mut stream,
                    &ToWorker::Error {
                        message: err.to_string(),
                    }
                    .to_frame(),
                );
                break;
            }
        };
        if write_frame(&mut stream, &reply.to_frame()).is_err() {
            break;
        }
    }
    // Connection gone (death, cancel, or hostile frame): a lease held
    // here can never complete — requeue immediately rather than waiting
    // for expiry.
    if let Some(chunk) = held {
        sched.lock().expect("scheduler lock").release(chunk);
    }
}

/// Validates one completion against the coordinator's own plan and merges
/// it. Any mismatch — wrong sub-seed, wrong length, a record that
/// disagrees with the spec it claims to be — rejects the completion and
/// requeues the chunk; corrupt results can never reach the merge.
#[allow(clippy::too_many_arguments)]
fn merge_completion(
    sched: &Mutex<Scheduler>,
    plan: &CampaignPlan,
    fabric: FabricConfig,
    total: usize,
    chunk: u64,
    sub_seed: u64,
    records: &[InjectionRecord],
    ctrl: &RunControl<'_>,
) -> ToWorker {
    let n_chunks = total.div_ceil(fabric.chunk_size.max(1));
    let Ok(chunk_idx) = usize::try_from(chunk) else {
        return ToWorker::Error {
            message: "chunk id overflows usize".into(),
        };
    };
    if chunk_idx >= n_chunks {
        return ToWorker::Error {
            message: format!("chunk {chunk} out of range ({n_chunks} chunks)"),
        };
    }
    let reject = |s: &mut Scheduler, message: String| {
        s.release(chunk_idx);
        ToWorker::Error { message }
    };

    let start = chunk_idx * fabric.chunk_size;
    let len = fabric.chunk_size.min(total - start);
    let mut s = sched.lock().expect("scheduler lock");
    if s.state[chunk_idx] == ChunkState::Done {
        // A slow duplicate of an already-merged chunk: benign, dedup.
        return ToWorker::Ack;
    }
    if sub_seed != chunk_sub_seed(plan.fingerprint, chunk) {
        return reject(&mut s, format!("sub-seed mismatch for chunk {chunk}"));
    }
    if records.len() != len {
        return reject(
            &mut s,
            format!(
                "chunk {chunk} carries {} records, expected {len}",
                records.len()
            ),
        );
    }
    for (offset, rec) in records.iter().enumerate() {
        let spec: &FaultSpec = &plan.specs[start + offset];
        if rec.site.pc != spec.pc
            || rec.site.slot != spec.slot
            || rec.site.bit != spec.bit
            || rec.instance != spec.instance
        {
            return reject(
                &mut s,
                format!("record {offset} of chunk {chunk} does not match its spec"),
            );
        }
    }
    for (offset, rec) in records.iter().enumerate() {
        let i = start + offset;
        if s.records[i].is_none() {
            s.records[i] = Some(*rec);
            s.fresh.push((i, *rec));
            s.filled += 1;
        }
    }
    s.state[chunk_idx] = ChunkState::Done;
    let (done, all) = (s.filled, s.records.len());
    drop(s);
    ctrl.progress.injections(done, all);
    ToWorker::Ack
}
