//! The distributed campaign fabric as a drop-in pipeline
//! [`TruthSource`]: the suite runner computes its ground truths over an
//! in-process worker fleet instead of the local thread pool, and —
//! because the merge is bit-deterministic — every downstream artifact
//! (GLVFIT01 truths in the cache, labels, trained models) is
//! byte-identical to what the default local source produces.

use std::sync::Arc;

use glaive::{campaign_error_to_pipeline, telemetry::Stage, Error, TruthSource};
use glaive_bench_suite::Benchmark;
use glaive_faultsim::{CampaignConfig, GroundTruth, RunControl};
use glaive_wire::{Backoff, RetryPolicy, Wait};

use crate::coordinator::FabricConfig;
use crate::{run_distributed, FabricError};

/// A [`TruthSource`] that runs each campaign over a distributed fabric
/// of `workers` in-process worker threads (see [`run_distributed`]).
///
/// Plug into a pipeline with
/// [`glaive::PipelineBuilder::truth_source`]:
///
/// ```no_run
/// # fn main() -> Result<(), glaive::Error> {
/// use std::sync::Arc;
/// use glaive::{Pipeline, PipelineConfig};
/// use glaive_campaign::DistributedTruthSource;
///
/// let pipeline = Pipeline::builder(PipelineConfig::quick_test())
///     .truth_source(Arc::new(DistributedTruthSource::with_workers(4)))
///     .build()?;
/// let eval = pipeline.run(7)?;
/// # let _ = eval;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DistributedTruthSource {
    /// Fabric tuning (chunk size, lease, retry backoff).
    pub fabric: FabricConfig,
    /// In-process worker threads per campaign.
    pub workers: usize,
    /// Retry policy for transient fabric failures (a listener that could
    /// not bind, a transport-level merge failure): the whole campaign is
    /// re-run — bit-determinism makes a re-run indistinguishable from a
    /// first run — before giving up with a typed error.
    pub retry: RetryPolicy,
}

impl DistributedTruthSource {
    /// A source with `workers` worker threads and default fabric tuning.
    pub fn with_workers(workers: usize) -> Self {
        DistributedTruthSource {
            fabric: FabricConfig::default(),
            workers,
            retry: RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        }
    }

    /// Boxes this source for [`glaive::PipelineBuilder::truth_source`].
    pub fn arc(self) -> Arc<dyn TruthSource> {
        Arc::new(self)
    }
}

impl TruthSource for DistributedTruthSource {
    fn ground_truth(
        &self,
        bench: &Benchmark,
        config: CampaignConfig,
        ctrl: &RunControl<'_>,
    ) -> Result<GroundTruth, Error> {
        let mut backoff = Backoff::new(self.retry);
        let fabric_err = loop {
            let attempt = run_distributed(
                bench.program(),
                &bench.init_mem,
                config,
                self.fabric,
                self.workers,
                ctrl,
            );
            match attempt {
                Ok(truth) => return Ok(truth),
                Err(e) if !e.is_transient() => break e,
                // Transient: the fleet never even formed or the transport
                // failed outright. Cancellation wins over the retry
                // budget: the wait goes through the control's cancel flag.
                Err(e) => match backoff.wait(ctrl.cancel) {
                    Wait::Waited => {}
                    Wait::Cancelled | Wait::Exhausted => {
                        break FabricError::RetriesExhausted {
                            attempts: backoff.attempts(),
                            last: Box::new(e),
                        }
                    }
                },
            }
        };
        Err(match fabric_err {
            FabricError::Campaign(ce) => campaign_error_to_pipeline(bench.name, ce),
            other => Error::StageFailed {
                stage: Stage::Campaign,
                subject: bench.name.to_string(),
                message: other.to_string(),
            },
        })
    }
}
