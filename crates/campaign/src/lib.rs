//! Distributed fault-injection campaign fabric.
//!
//! The GLAIVE ground-truth campaign is embarrassingly parallel — every
//! injection is independent — but until this crate it was confined to one
//! process. Here a **coordinator** shards a campaign's canonical spec
//! space into fixed chunks and leases them over TCP (the `GLVCMP01`
//! protocol, riding the shared [`glaive_wire`] codec) to any number of
//! **worker** processes, which may join late, die mid-chunk, or straggle
//! past their lease: unacknowledged chunks are reassigned, duplicate
//! completions are deduplicated by chunk id, and every completion is
//! validated against the coordinator's own plan before merging.
//!
//! The defining property is *bit-determinism*: the merged
//! [`glaive_faultsim::GroundTruth`] — and therefore its GLVFIT01
//! serialisation and any GLVCKPT1 checkpoints taken along the way — is
//! byte-identical to a single-process [`glaive_faultsim::Campaign`] run
//! of the same configuration, regardless of worker count, scheduling
//! order, deaths or retries. See [`coordinator`] for how the merge
//! guarantees this.
//!
//! # Example (in-process fleet)
//!
//! ```
//! use glaive_isa::{Asm, Reg, AluOp};
//! use glaive_faultsim::{Campaign, CampaignConfig, RunControl};
//! use glaive_campaign::{run_distributed, FabricConfig};
//!
//! let mut asm = Asm::new("tiny");
//! asm.li(Reg(1), 21);
//! asm.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
//! asm.out(Reg(2));
//! asm.halt();
//! let p = asm.finish()?;
//!
//! let config = CampaignConfig::quick();
//! let serial = Campaign::try_new(&p, &[], config)?.run();
//! let distributed = run_distributed(
//!     &p,
//!     &[],
//!     config,
//!     FabricConfig::default(),
//!     2,
//!     &RunControl::new(),
//! )
//! .expect("fabric completes");
//! assert_eq!(serial.to_bytes(), distributed.to_bytes());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::net::TcpListener;

use glaive_faultsim::{CampaignConfig, CampaignError, GroundTruth, RunControl, TruthError};
use glaive_isa::Program;
use glaive_wire::ProtocolError;

pub mod coordinator;
pub mod protocol;
pub mod source;
pub mod worker;

pub use coordinator::{Coordinator, FabricConfig};
pub use source::DistributedTruthSource;
pub use worker::{run_worker, run_worker_on, run_worker_with, WorkerOptions, WorkerReport};

/// Typed failure of the campaign fabric. Worker misbehaviour never
/// surfaces here — a bad completion is rejected over the wire and its
/// chunk requeued; these are failures of the campaign itself or of this
/// end's transport.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A [`FabricConfig`] field or fleet parameter is out of range.
    InvalidConfig {
        /// The offending field.
        field: &'static str,
    },
    /// The underlying campaign failed or was interrupted (checkpoint
    /// already saved where configured).
    Campaign(CampaignError),
    /// The peer spoke the protocol wrongly (or not at all).
    Protocol(ProtocolError),
    /// Transport failure (connect, read, write).
    Io(String),
    /// The merged parts could not form a `GroundTruth`.
    Truth(TruthError),
    /// A worker's locally recomputed plan fingerprint disagrees with the
    /// coordinator's — mismatched binaries or a corrupted job.
    PlanMismatch {
        /// The coordinator's fingerprint.
        expected: u64,
        /// The worker's locally computed fingerprint.
        actual: u64,
    },
    /// The coordinator refused a request.
    Rejected {
        /// The coordinator's stated reason.
        message: String,
    },
    /// A retry loop gave up: consecutive transient failures outlasted
    /// the [`glaive_wire::RetryPolicy`] budget. Wraps the last failure.
    RetriesExhausted {
        /// Attempts taken before giving up.
        attempts: u32,
        /// The transient failure that exhausted the budget.
        last: Box<FabricError>,
    },
}

impl FabricError {
    /// Whether a retry may succeed: transport failures, corrupted or
    /// misspoken frames, and coordinator refusals are transient (a redial
    /// re-handshakes and the coordinator requeues any abandoned lease);
    /// disagreements about the job itself are not.
    pub fn is_transient(&self) -> bool {
        match self {
            FabricError::Io(_) | FabricError::Protocol(_) | FabricError::Rejected { .. } => true,
            FabricError::InvalidConfig { .. }
            | FabricError::Campaign(_)
            | FabricError::Truth(_)
            | FabricError::PlanMismatch { .. }
            | FabricError::RetriesExhausted { .. } => false,
        }
    }
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::InvalidConfig { field } => {
                write!(f, "invalid fabric config: `{field}` must be at least 1")
            }
            FabricError::Campaign(e) => write!(f, "campaign failed: {e}"),
            FabricError::Protocol(e) => write!(f, "protocol violation: {e}"),
            FabricError::Io(e) => write!(f, "fabric transport error: {e}"),
            FabricError::Truth(e) => write!(f, "merge produced no usable ground truth: {e}"),
            FabricError::PlanMismatch { expected, actual } => write!(
                f,
                "plan fingerprint mismatch: coordinator {expected:#018x}, worker {actual:#018x}"
            ),
            FabricError::Rejected { message } => write!(f, "rejected by coordinator: {message}"),
            FabricError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

impl From<ProtocolError> for FabricError {
    fn from(e: ProtocolError) -> FabricError {
        FabricError::Protocol(e)
    }
}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> FabricError {
        FabricError::Io(e.to_string())
    }
}

/// Runs a complete distributed campaign in one process: binds an
/// ephemeral loopback listener, spawns `workers` in-process worker
/// threads against it, and coordinates until the merge completes.
///
/// This is the drop-in path for tests, benchmarks and the suite runner;
/// multi-machine deployments use `glaive-cli campaign coordinate` /
/// `campaign worker` over the same protocol.
///
/// # Errors
///
/// The coordinator's [`Coordinator::run`] error set; worker-side errors
/// are ignored (a dead in-process worker is handled exactly like a dead
/// remote one — by reassignment).
pub fn run_distributed(
    program: &Program,
    init_mem: &[u64],
    config: CampaignConfig,
    fabric: FabricConfig,
    workers: usize,
    ctrl: &RunControl<'_>,
) -> Result<GroundTruth, FabricError> {
    if workers < 1 {
        return Err(FabricError::InvalidConfig { field: "workers" });
    }
    let coordinator = Coordinator::try_new(program, init_mem, config, fabric)?;
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| FabricError::Io(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| FabricError::Io(e.to_string()))?
        .to_string();
    std::thread::scope(|scope| {
        for i in 0..workers {
            let addr = addr.clone();
            scope.spawn(move || {
                // Worker failures are the coordinator's problem to route
                // around, exactly as with remote workers.
                let _ = run_worker(&addr, &format!("inproc-{i}"), None);
            });
        }
        coordinator.run(listener, ctrl)
    })
}
