//! Simplified streamcluster kernel: iterative k-median-style clustering of
//! 2-D points (Table II: "Computer vision", control-sensitive).
//!
//! Each iteration assigns every point to its nearest of K centers (an
//! argmin over float distances — branch-dense like the original's gain
//! computation) and then recomputes the centers as assignment means.
//! Outputs the per-cluster counts and final center coordinates.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Number of points.
pub const POINTS: usize = 16;
/// Number of cluster centers.
pub const K: usize = 3;
/// Clustering iterations.
pub const ITERS: usize = 3;

/// Builds the benchmark with random points derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let n = POINTS as i64;
    let k = K as i64;
    let mut m = ModuleBuilder::new("streamcluster");
    let px = m.array("px", POINTS);
    let py = m.array("py", POINTS);
    let cx = m.array("cx", K);
    let cy = m.array("cy", K);
    let asn = m.array("assign", POINTS);
    let sx = m.array("sx", K);
    let sy = m.array("sy", K);
    let cnt = m.array("cnt", K);
    let (i, c, it, bestc, bestd, dx, dy, d, cc) = (
        m.var("i"),
        m.var("c"),
        m.var("it"),
        m.var("bestc"),
        m.var("bestd"),
        m.var("dx"),
        m.var("dy"),
        m.var("d"),
        m.var("cc"),
    );

    // Centers start at the first K points.
    m.push(for_(
        c,
        int(0),
        int(k),
        vec![store(cx, v(c), ld(px, v(c))), store(cy, v(c), ld(py, v(c)))],
    ));

    m.push(for_(
        it,
        int(0),
        int(ITERS as i64),
        vec![
            // Assignment step.
            for_(
                i,
                int(0),
                int(n),
                vec![
                    assign(bestc, int(0)),
                    assign(bestd, flt(f64::MAX)),
                    for_(
                        c,
                        int(0),
                        int(k),
                        vec![
                            assign(dx, fsub(ld(px, v(i)), ld(cx, v(c)))),
                            assign(dy, fsub(ld(py, v(i)), ld(cy, v(c)))),
                            assign(d, fadd(fmul(v(dx), v(dx)), fmul(v(dy), v(dy)))),
                            if_(
                                flt_(v(d), v(bestd)),
                                vec![assign(bestd, v(d)), assign(bestc, v(c))],
                            ),
                        ],
                    ),
                    store(asn, v(i), v(bestc)),
                ],
            ),
            // Update step.
            for_(
                c,
                int(0),
                int(k),
                vec![
                    store(sx, v(c), flt(0.0)),
                    store(sy, v(c), flt(0.0)),
                    store(cnt, v(c), int(0)),
                ],
            ),
            for_(
                i,
                int(0),
                int(n),
                vec![
                    assign(cc, ld(asn, v(i))),
                    store(sx, v(cc), fadd(ld(sx, v(cc)), ld(px, v(i)))),
                    store(sy, v(cc), fadd(ld(sy, v(cc)), ld(py, v(i)))),
                    store(cnt, v(cc), add(ld(cnt, v(cc)), int(1))),
                ],
            ),
            for_(
                c,
                int(0),
                int(k),
                vec![if_(
                    gt(ld(cnt, v(c)), int(0)),
                    vec![
                        store(cx, v(c), fdiv(ld(sx, v(c)), i2f(ld(cnt, v(c))))),
                        store(cy, v(c), fdiv(ld(sy, v(c)), i2f(ld(cnt, v(c))))),
                    ],
                )],
            ),
        ],
    ));

    m.push(for_(c, int(0), int(k), vec![out(ld(cnt, v(c)))]));
    // Centers are emitted as fixed-point micro-units, like the original's
    // limited-precision printf: faults in low mantissa bits mask.
    m.push(for_(
        c,
        int(0),
        int(k),
        vec![
            out(f2i(fmul(ld(cx, v(c)), flt(1e6)))),
            out(f2i(fmul(ld(cy, v(c)), flt(1e6)))),
        ],
    ));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("streamcluster compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "streamcluster",
        category: Category::Control,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates the point cloud: three loose blobs so clustering is
/// well-conditioned. Arrays `px` (base 0) and `py` (base POINTS).
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x73747265); // "stre"
    let blob_centers = [(0.0, 0.0), (10.0, 2.0), (5.0, 9.0)];
    let mut mem = vec![0u64; 2 * POINTS];
    for i in 0..POINTS {
        let (bx, by) = blob_centers[i % K];
        let x = bx + rng.next_f64() * 2.0 - 1.0;
        let y = by + rng.next_f64() * 2.0 - 1.0;
        mem[i] = x.to_bits();
        mem[POINTS + i] = y.to_bits();
    }
    mem
}

/// Reference clustering in Rust, returning (counts, centers).
pub fn reference(px: &[f64], py: &[f64]) -> (Vec<u64>, Vec<(f64, f64)>) {
    let mut cx: Vec<f64> = px[..K].to_vec();
    let mut cy: Vec<f64> = py[..K].to_vec();
    let mut assign = [0usize; POINTS];
    let mut counts = vec![0u64; K];
    for _ in 0..ITERS {
        for i in 0..POINTS {
            let mut bestc = 0;
            let mut bestd = f64::MAX;
            for c in 0..K {
                let (dx, dy) = (px[i] - cx[c], py[i] - cy[c]);
                let d = dx * dx + dy * dy;
                if d < bestd {
                    bestd = d;
                    bestc = c;
                }
            }
            assign[i] = bestc;
        }
        let mut sx = [0.0; K];
        let mut sy = [0.0; K];
        counts = vec![0u64; K];
        for i in 0..POINTS {
            sx[assign[i]] += px[i];
            sy[assign[i]] += py[i];
            counts[assign[i]] += 1;
        }
        for c in 0..K {
            if counts[c] > 0 {
                cx[c] = sx[c] / counts[c] as f64;
                cy[c] = sy[c] / counts[c] as f64;
            }
        }
    }
    (counts, cx.into_iter().zip(cy).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference_bit_exactly() {
        for seed in [1, 7, 13] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let px: Vec<f64> = b.init_mem[..POINTS]
                .iter()
                .map(|&x| f64::from_bits(x))
                .collect();
            let py: Vec<f64> = b.init_mem[POINTS..]
                .iter()
                .map(|&x| f64::from_bits(x))
                .collect();
            let (counts, centers) = reference(&px, &py);
            let mut want: Vec<u64> = counts.clone();
            for (x, y) in centers {
                want.push(((x * 1e6) as i64) as u64);
                want.push(((y * 1e6) as i64) as u64);
            }
            assert_eq!(r.output, want, "seed {seed}");
        }
    }

    #[test]
    fn every_point_is_assigned() {
        let b = build(3);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        let total: u64 = r.output[..K].iter().sum();
        assert_eq!(total, POINTS as u64);
    }
}
