//! Triangle–triangle intersection pretest (Table II: "Robotics",
//! control-sensitive).
//!
//! For each pair of 3-D triangles this kernel runs the plane-separation
//! stage of Möller's test: if all vertices of one triangle lie strictly on
//! one side of the other's supporting plane the pair cannot intersect.
//! Per pair it emits `0` (separated by the second triangle's plane), `1`
//! (separated by the first's), or `2` (potentially intersecting) — a dense
//! cascade of float comparisons and sign branches, the signature of the
//! original AXBench kernel.

use glaive_lang::{dsl::*, Expr, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Number of triangle pairs tested.
pub const PAIRS: usize = 4;
/// Words per pair: 2 triangles × 3 vertices × 3 coordinates.
pub const WORDS_PER_PAIR: usize = 18;

/// Builds the benchmark with random triangle pairs derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let mut m = ModuleBuilder::new("jmeint");
    let tris = m.array("tris", PAIRS * WORDS_PER_PAIR);
    let p = m.var("p");
    let base = m.var("base");

    // Vertex coordinate variables: v[0..3] first triangle, u[0..3] second.
    let coord_names = [
        "v0x", "v0y", "v0z", "v1x", "v1y", "v1z", "v2x", "v2y", "v2z", "u0x", "u0y", "u0z", "u1x",
        "u1y", "u1z", "u2x", "u2y", "u2z",
    ];
    let coords: Vec<_> = coord_names.iter().map(|n| m.var(*n)).collect();
    let (nx, ny, nz, d, s0, s1, s2, verdict) = (
        m.var("nx"),
        m.var("ny"),
        m.var("nz"),
        m.var("d"),
        m.var("s0"),
        m.var("s1"),
        m.var("s2"),
        m.var("verdict"),
    );

    let c = |idx: usize| v(coords[idx]);
    // Indices into `coords` for vertex `t` (0..6) coordinate `axis` (0..3).
    let vi = |t: usize, axis: usize| t * 3 + axis;

    // Statements computing the normal of triangle (a,b,cv) into nx/ny/nz
    // and plane offset into d: n = (b-a) × (cv-a), d = -n·a.
    let plane = |a: usize, b: usize, cv: usize| -> Vec<glaive_lang::Stmt> {
        let e1 = |ax: usize| fsub(c(vi(b, ax)), c(vi(a, ax)));
        let e2 = |ax: usize| fsub(c(vi(cv, ax)), c(vi(a, ax)));
        vec![
            assign(nx, fsub(fmul(e1(1), e2(2)), fmul(e1(2), e2(1)))),
            assign(ny, fsub(fmul(e1(2), e2(0)), fmul(e1(0), e2(2)))),
            assign(nz, fsub(fmul(e1(0), e2(1)), fmul(e1(1), e2(0)))),
            assign(
                d,
                fneg(fadd(
                    fadd(fmul(v(nx), c(vi(a, 0))), fmul(v(ny), c(vi(a, 1)))),
                    fmul(v(nz), c(vi(a, 2))),
                )),
            ),
        ]
    };
    // Signed distance of vertex `t` to the current plane.
    let sdist = |t: usize| -> Expr {
        fadd(
            fadd(
                fadd(fmul(v(nx), c(vi(t, 0))), fmul(v(ny), c(vi(t, 1)))),
                fmul(v(nz), c(vi(t, 2))),
            ),
            v(d),
        )
    };
    let all_positive = |a, b, cc| {
        and(
            and(fgt(v(a), flt(0.0)), fgt(v(b), flt(0.0))),
            fgt(v(cc), flt(0.0)),
        )
    };
    let all_negative = |a, b, cc| {
        and(
            and(flt_(v(a), flt(0.0)), flt_(v(b), flt(0.0))),
            flt_(v(cc), flt(0.0)),
        )
    };

    let mut body = vec![assign(base, mul(v(p), int(WORDS_PER_PAIR as i64)))];
    for (k, &var) in coords.iter().enumerate() {
        body.push(assign(var, ld(tris, add(v(base), int(k as i64)))));
    }
    body.push(assign(verdict, int(2)));
    // Plane of the second triangle (vertices 3,4,5); distances of 0,1,2.
    body.extend(plane(3, 4, 5));
    body.push(assign(s0, sdist(0)));
    body.push(assign(s1, sdist(1)));
    body.push(assign(s2, sdist(2)));
    body.push(if_(
        or(all_positive(s0, s1, s2), all_negative(s0, s1, s2)),
        vec![assign(verdict, int(0))],
    ));
    // Plane of the first triangle; distances of 3,4,5.
    body.push(if_(eq(v(verdict), int(2)), {
        let mut inner = plane(0, 1, 2);
        inner.push(assign(s0, sdist(3)));
        inner.push(assign(s1, sdist(4)));
        inner.push(assign(s2, sdist(5)));
        inner.push(if_(
            or(all_positive(s0, s1, s2), all_negative(s0, s1, s2)),
            vec![assign(verdict, int(1))],
        ));
        inner
    }));
    body.push(out(v(verdict)));
    m.push(for_(p, int(0), int(PAIRS as i64), body));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("jmeint compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "jmeint",
        category: Category::Control,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates random triangle pairs (coordinates in `[-5, 5]`), array `tris`
/// at base 0.
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x6a6d6569); // "jmei"
    (0..PAIRS * WORDS_PER_PAIR)
        .map(|_| (rng.next_f64() * 10.0 - 5.0).to_bits())
        .collect()
}

/// Reference classification in Rust, mirroring the kernel's float op order.
pub fn reference(tris: &[f64]) -> Vec<u64> {
    let mut res = Vec::with_capacity(PAIRS);
    for p in 0..PAIRS {
        let at = |t: usize, ax: usize| tris[p * WORDS_PER_PAIR + t * 3 + ax];
        let plane = |a: usize, b: usize, c: usize| -> ([f64; 3], f64) {
            let e1 = [
                at(b, 0) - at(a, 0),
                at(b, 1) - at(a, 1),
                at(b, 2) - at(a, 2),
            ];
            let e2 = [
                at(c, 0) - at(a, 0),
                at(c, 1) - at(a, 1),
                at(c, 2) - at(a, 2),
            ];
            let n = [
                e1[1] * e2[2] - e1[2] * e2[1],
                e1[2] * e2[0] - e1[0] * e2[2],
                e1[0] * e2[1] - e1[1] * e2[0],
            ];
            let d = -((n[0] * at(a, 0) + n[1] * at(a, 1)) + n[2] * at(a, 2));
            (n, d)
        };
        let sdist = |n: &[f64; 3], d: f64, t: usize| {
            ((n[0] * at(t, 0) + n[1] * at(t, 1)) + n[2] * at(t, 2)) + d
        };
        let same_side = |s: [f64; 3]| {
            (s[0] > 0.0 && s[1] > 0.0 && s[2] > 0.0) || (s[0] < 0.0 && s[1] < 0.0 && s[2] < 0.0)
        };
        let (n2, d2) = plane(3, 4, 5);
        if same_side([sdist(&n2, d2, 0), sdist(&n2, d2, 1), sdist(&n2, d2, 2)]) {
            res.push(0);
            continue;
        }
        let (n1, d1) = plane(0, 1, 2);
        if same_side([sdist(&n1, d1, 3), sdist(&n1, d1, 4), sdist(&n1, d1, 5)]) {
            res.push(1);
        } else {
            res.push(2);
        }
    }
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference() {
        for seed in [1, 2, 3, 4, 5] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let tris: Vec<f64> = b.init_mem.iter().map(|&x| f64::from_bits(x)).collect();
            assert_eq!(r.output, reference(&tris), "seed {seed}");
        }
    }

    #[test]
    fn separated_triangles_classified_zero() {
        // Two triangles far apart along z: first in z=0, second in z=10.
        let mut tris = vec![0.0f64; WORDS_PER_PAIR * PAIRS];
        let t1 = [(0.0, 0.0, 0.0), (1.0, 0.0, 0.0), (0.0, 1.0, 0.0)];
        let t2 = [(0.0, 0.0, 10.0), (1.0, 0.0, 10.0), (0.0, 1.0, 10.0)];
        for (i, &(x, y, z)) in t1.iter().chain(t2.iter()).enumerate() {
            tris[i * 3] = x;
            tris[i * 3 + 1] = y;
            tris[i * 3 + 2] = z;
        }
        assert_eq!(reference(&tris)[0], 0);
    }

    #[test]
    fn overlapping_triangles_classified_two() {
        let mut tris = vec![0.0f64; WORDS_PER_PAIR * PAIRS];
        // Interpenetrating triangles.
        let t1 = [(0.0, 0.0, -1.0), (1.0, 0.0, 1.0), (0.0, 1.0, 1.0)];
        let t2 = [(0.0, 0.0, 0.0), (2.0, 0.0, 0.0), (0.0, 2.0, 0.0)];
        for (i, &(x, y, z)) in t1.iter().chain(t2.iter()).enumerate() {
            tris[i * 3] = x;
            tris[i * 3 + 1] = y;
            tris[i * 3 + 2] = z;
        }
        assert_eq!(reference(&tris)[0], 2);
    }
}
