//! A* grid path search with Manhattan heuristic (Table II: "Path search",
//! control-sensitive).
//!
//! 8×8 grid with obstacles, 4-connectivity, unit step cost. The open set is
//! scanned linearly for the minimum f-score (a branch-dense argmin, like the
//! paper's priority-queue-heavy original). Outputs the goal's g-score, a
//! found flag, and the number of expanded nodes.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Grid side length.
pub const SIDE: usize = 6;
/// Number of grid cells.
pub const CELLS: usize = SIDE * SIDE;
/// The "infinite" g-score.
pub const INF: i64 = 1 << 30;

/// Builds the benchmark with a random obstacle map derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let side = SIDE as i64;
    let cells = CELLS as i64;
    let goal = cells - 1;
    let mut m = ModuleBuilder::new("astar");
    let grid = m.array("grid", CELLS);
    let gscore = m.array("gscore", CELLS);
    let open = m.array("open", CELLS);
    let closed = m.array("closed", CELLS);
    let (i, cur, best, bestf, f, row, col, found, expanded, nb, tent, h) = (
        m.var("i"),
        m.var("cur"),
        m.var("best"),
        m.var("bestf"),
        m.var("f"),
        m.var("row"),
        m.var("col"),
        m.var("found"),
        m.var("expanded"),
        m.var("nb"),
        m.var("tent"),
        m.var("h"),
    );

    m.push(for_(
        i,
        int(0),
        int(cells),
        vec![
            store(gscore, v(i), int(INF)),
            store(open, v(i), int(0)),
            store(closed, v(i), int(0)),
        ],
    ));
    m.push(store(gscore, int(0), int(0)));
    m.push(store(open, int(0), int(1)));
    m.push(assign(found, int(0)));
    m.push(assign(expanded, int(0)));

    // Relaxation of one neighbour `nb` given tentative score `tent`.
    let relax = |nb_expr: glaive_lang::Expr| -> Vec<glaive_lang::Stmt> {
        vec![
            assign(nb, nb_expr),
            if_(
                and(eq(ld(grid, v(nb)), int(0)), eq(ld(closed, v(nb)), int(0))),
                vec![if_(
                    lt(v(tent), ld(gscore, v(nb))),
                    vec![store(gscore, v(nb), v(tent)), store(open, v(nb), int(1))],
                )],
            ),
        ]
    };

    let mut body = vec![
        // Select open node with minimum f = g + manhattan(goal).
        assign(best, int(-1)),
        assign(bestf, int(INF)),
        for_(
            i,
            int(0),
            int(cells),
            vec![if_(
                eq(ld(open, v(i)), int(1)),
                vec![
                    assign(row, div(v(i), int(side))),
                    assign(col, rem(v(i), int(side))),
                    assign(
                        h,
                        add(sub(int(side - 1), v(row)), sub(int(side - 1), v(col))),
                    ),
                    assign(f, add(ld(gscore, v(i)), v(h))),
                    if_(
                        lt(v(f), v(bestf)),
                        vec![assign(bestf, v(f)), assign(best, v(i))],
                    ),
                ],
            )],
        ),
        if_else(
            lt(v(best), int(0)),
            // Open set empty: stop by exhausting the loop counter.
            vec![assign(found, v(found))],
            vec![
                assign(cur, v(best)),
                store(open, v(cur), int(0)),
                store(closed, v(cur), int(1)),
                assign(expanded, add(v(expanded), int(1))),
                if_else(
                    eq(v(cur), int(goal)),
                    vec![assign(found, int(1))],
                    vec![
                        assign(row, div(v(cur), int(side))),
                        assign(col, rem(v(cur), int(side))),
                        assign(tent, add(ld(gscore, v(cur)), int(1))),
                    ],
                ),
            ],
        ),
    ];
    // Neighbour relaxations only when a node was expanded and not the goal.
    let mut neighbor_block = vec![if_(gt(v(row), int(0)), relax(sub(v(cur), int(side))))];
    neighbor_block.push(if_(
        lt(v(row), int(side - 1)),
        relax(add(v(cur), int(side))),
    ));
    neighbor_block.push(if_(gt(v(col), int(0)), relax(sub(v(cur), int(1)))));
    neighbor_block.push(if_(lt(v(col), int(side - 1)), relax(add(v(cur), int(1)))));
    body.push(if_(
        and(ge(v(best), int(0)), eq(v(found), int(0))),
        neighbor_block,
    ));

    let iter = m.var("iter");
    let mut loop_body = vec![if_(eq(v(found), int(0)), body)];
    loop_body.shrink_to_fit();
    m.push(for_(iter, int(0), int(cells), loop_body));

    m.push(out(v(found)));
    m.push(out(ld(gscore, int(goal))));
    m.push(out(v(expanded)));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("astar compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "astar",
        category: Category::Control,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates the obstacle grid (array `grid` at base 0): ~25% obstacles with
/// the top row and right column kept free so a path always exists.
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x61737461); // "asta"
    let mut grid = vec![0u64; CELLS];
    for r in 0..SIDE {
        for c in 0..SIDE {
            if rng.next_below(100) < 25 {
                grid[r * SIDE + c] = 1;
            }
        }
    }
    for cell in grid.iter_mut().take(SIDE) {
        *cell = 0; // top row free
    }
    for r in 0..SIDE {
        grid[r * SIDE + SIDE - 1] = 0; // right column free
    }
    grid[0] = 0;
    grid[CELLS - 1] = 0;
    grid
}

/// Reference A* (g-score of the goal and expansion count) in Rust.
pub fn reference(grid: &[u64]) -> (u64, i64, u64) {
    let side = SIDE;
    let goal = CELLS - 1;
    let mut g = vec![INF; CELLS];
    let mut open = [false; CELLS];
    let mut closed = [false; CELLS];
    g[0] = 0;
    open[0] = true;
    let mut found = 0u64;
    let mut expanded = 0u64;
    for _ in 0..CELLS {
        if found == 1 {
            continue;
        }
        let mut best = usize::MAX;
        let mut bestf = INF;
        for i in 0..CELLS {
            if open[i] {
                let (row, col) = (i / side, i % side);
                let h = (side - 1 - row) as i64 + (side - 1 - col) as i64;
                let f = g[i] + h;
                if f < bestf {
                    bestf = f;
                    best = i;
                }
            }
        }
        if best == usize::MAX {
            continue;
        }
        let cur = best;
        open[cur] = false;
        closed[cur] = true;
        expanded += 1;
        if cur == goal {
            found = 1;
            continue;
        }
        let (row, col) = (cur / side, cur % side);
        let tent = g[cur] + 1;
        let mut relax = |nb: usize| {
            if grid[nb] == 0 && !closed[nb] && tent < g[nb] {
                g[nb] = tent;
                open[nb] = true;
            }
        };
        if row > 0 {
            relax(cur - side);
        }
        if row < side - 1 {
            relax(cur + side);
        }
        if col > 0 {
            relax(cur - 1);
        }
        if col < side - 1 {
            relax(cur + 1);
        }
    }
    (found, g[goal], expanded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference() {
        for seed in [1, 2, 3, 42] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let (found, cost, expanded) = reference(&b.init_mem);
            assert_eq!(r.output, vec![found, cost as u64, expanded], "seed {seed}");
        }
    }

    #[test]
    fn path_is_always_found() {
        for seed in 0..8 {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert_eq!(r.output[0], 1, "seed {seed}: no path found");
            // Free top row + right column bound the optimal cost at 2*(SIDE-1).
            assert_eq!(
                r.output[1],
                2 * (SIDE as u64 - 1),
                "seed {seed}: manhattan-optimal path expected"
            );
        }
    }
}
