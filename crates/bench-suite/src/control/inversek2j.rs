//! Two-joint arm inverse kinematics (Table II: "3-D gaming",
//! control-sensitive, **validation** split).
//!
//! For each target point the kernel computes the elbow and shoulder angles
//! `θ2 = acos((x² + y² − l1² − l2²) / (2·l1·l2))`,
//! `θ1 = atan2(y, x) − atan2(l2·sin θ2, l1 + l2·cos θ2)` — dominated by the
//! branchy range reductions inside `acos`/`atan2`.
//!
//! This benchmark is never trained on: it validates that GLAIVE's learned
//! vulnerability knowledge transfers to unseen programs.

use glaive_lang::{dsl::*, mathlib, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Number of target points.
pub const TARGETS: usize = 4;
/// Upper-arm length.
pub const L1: f64 = 0.5;
/// Forearm length.
pub const L2: f64 = 0.5;

/// Builds the benchmark with reachable random targets derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let mut m = ModuleBuilder::new("inversek2j");
    let xs = m.array("xs", TARGETS);
    let ys = m.array("ys", TARGETS);
    let (i, x, y, d, th2, th1) = (
        m.var("i"),
        m.var("x"),
        m.var("y"),
        m.var("d"),
        m.var("th2"),
        m.var("th1"),
    );

    let mut body = vec![
        assign(x, ld(xs, v(i))),
        assign(y, ld(ys, v(i))),
        assign(
            d,
            fdiv(
                fsub(
                    fadd(fmul(v(x), v(x)), fmul(v(y), v(y))),
                    flt(L1 * L1 + L2 * L2),
                ),
                flt(2.0 * L1 * L2),
            ),
        ),
        if_(fgt(v(d), flt(1.0)), vec![assign(d, flt(1.0))]),
        if_(flt_(v(d), flt(-1.0)), vec![assign(d, flt(-1.0))]),
    ];
    let (acos_stmts, acos_v) = mathlib::acos(&mut m, v(d));
    body.extend(acos_stmts);
    body.push(assign(th2, acos_v));
    let (sin_stmts, sin_v) = mathlib::sin(&mut m, v(th2));
    body.extend(sin_stmts);
    let (cos_stmts, cos_v) = mathlib::cos(&mut m, v(th2));
    body.extend(cos_stmts);
    let (at_target, at_target_v) = mathlib::atan2(&mut m, v(y), v(x));
    body.extend(at_target);
    let (at_elbow, at_elbow_v) = mathlib::atan2(
        &mut m,
        fmul(flt(L2), sin_v),
        fadd(flt(L1), fmul(flt(L2), cos_v)),
    );
    body.extend(at_elbow);
    body.push(assign(th1, fsub(at_target_v, at_elbow_v)));
    // Angles are emitted in fixed-point micro-radians (the original
    // prints with limited precision, masking low mantissa bits).
    body.push(out(f2i(fmul(v(th1), flt(1e6)))));
    body.push(out(f2i(fmul(v(th2), flt(1e6)))));
    m.push(for_(i, int(0), int(TARGETS as i64), body));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("inversek2j compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "inversek2j",
        category: Category::Control,
        split: Split::Validation,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates reachable targets via forward kinematics from random joint
/// angles (arrays `xs` at base 0 and `ys` at base TARGETS).
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x696b3266); // "ik2f"
    let mut mem = vec![0u64; 2 * TARGETS];
    for i in 0..TARGETS {
        let t1 = rng.next_f64() * std::f64::consts::PI - std::f64::consts::FRAC_PI_2;
        let t2 = rng.next_f64() * 2.0 + 0.3; // elbow clearly bent
        let x = L1 * t1.cos() + L2 * (t1 + t2).cos();
        let y = L1 * t1.sin() + L2 * (t1 + t2).sin();
        mem[i] = x.to_bits();
        mem[TARGETS + i] = y.to_bits();
    }
    mem
}

/// Reference IK angles using Rust std math (approximate comparison only —
/// the in-ISA polynomial math differs in the last few ulps).
pub fn reference(xs: &[f64], ys: &[f64]) -> Vec<(f64, f64)> {
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let d = ((x * x + y * y) - (L1 * L1 + L2 * L2)) / (2.0 * L1 * L2);
            let d = d.clamp(-1.0, 1.0);
            let th2 = d.acos();
            let th1 = y.atan2(x) - (L2 * th2.sin()).atan2(L1 + L2 * th2.cos());
            (th1, th2)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference_approximately() {
        for seed in [1, 4, 9] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let xs: Vec<f64> = b.init_mem[..TARGETS]
                .iter()
                .map(|&v| f64::from_bits(v))
                .collect();
            let ys: Vec<f64> = b.init_mem[TARGETS..]
                .iter()
                .map(|&v| f64::from_bits(v))
                .collect();
            let want = reference(&xs, &ys);
            for (k, &(th1, th2)) in want.iter().enumerate() {
                let got1 = (r.output[2 * k] as i64) as f64 / 1e6;
                let got2 = (r.output[2 * k + 1] as i64) as f64 / 1e6;
                assert!(
                    (got1 - th1).abs() < 1e-4,
                    "seed {seed} θ1[{k}]: {got1} vs {th1}"
                );
                assert!(
                    (got2 - th2).abs() < 1e-4,
                    "seed {seed} θ2[{k}]: {got2} vs {th2}"
                );
            }
        }
    }

    #[test]
    fn forward_kinematics_roundtrip() {
        // Applying forward kinematics to the computed angles must land on
        // the target point.
        let b = build(11);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        let xs: Vec<f64> = b.init_mem[..TARGETS]
            .iter()
            .map(|&v| f64::from_bits(v))
            .collect();
        let ys: Vec<f64> = b.init_mem[TARGETS..]
            .iter()
            .map(|&v| f64::from_bits(v))
            .collect();
        for k in 0..TARGETS {
            let th1 = (r.output[2 * k] as i64) as f64 / 1e6;
            let th2 = (r.output[2 * k + 1] as i64) as f64 / 1e6;
            let x = L1 * th1.cos() + L2 * (th1 + th2).cos();
            let y = L1 * th1.sin() + L2 * (th1 + th2).sin();
            assert!((x - xs[k]).abs() < 1e-3, "target {k}: x {x} vs {}", xs[k]);
            assert!((y - ys[k]).abs() < 1e-3, "target {k}: y {y} vs {}", ys[k]);
        }
    }
}
