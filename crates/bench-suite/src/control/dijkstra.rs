//! Dijkstra single-source shortest paths on a dense adjacency matrix
//! (Table II: "Path search", control-sensitive).
//!
//! O(N²) classic formulation: repeatedly select the unvisited node with the
//! minimum tentative distance (a branch-heavy argmin scan) and relax its
//! outgoing edges. Outputs the final distance vector.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Number of graph nodes.
pub const NODES: usize = 8;
/// Edge-weight value representing "no edge" / infinity.
pub const INF: i64 = 1 << 30;

/// Builds the benchmark with a random strongly-connected-ish weighted graph
/// derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let n = NODES as i64;
    let mut m = ModuleBuilder::new("dijkstra");
    let adj = m.array("adj", NODES * NODES);
    let dist = m.array("dist", NODES);
    let visited = m.array("visited", NODES);
    let (i, j, best, best_i, iter, du, w, alt) = (
        m.var("i"),
        m.var("j"),
        m.var("best"),
        m.var("best_i"),
        m.var("iter"),
        m.var("du"),
        m.var("w"),
        m.var("alt"),
    );

    // init: dist[i] = INF, visited[i] = 0; dist[0] = 0
    m.push(for_(
        i,
        int(0),
        int(n),
        vec![store(dist, v(i), int(INF)), store(visited, v(i), int(0))],
    ));
    m.push(store(dist, int(0), int(0)));

    // main loop: N iterations of select-min + relax
    m.push(for_(
        iter,
        int(0),
        int(n),
        vec![
            // argmin over unvisited
            assign(best, int(INF)),
            assign(best_i, int(-1)),
            for_(
                i,
                int(0),
                int(n),
                vec![if_(
                    and(eq(ld(visited, v(i)), int(0)), lt(ld(dist, v(i)), v(best))),
                    vec![assign(best, ld(dist, v(i))), assign(best_i, v(i))],
                )],
            ),
            if_(
                ge(v(best_i), int(0)),
                vec![
                    store(visited, v(best_i), int(1)),
                    assign(du, ld(dist, v(best_i))),
                    // relax edges out of best_i
                    for_(
                        j,
                        int(0),
                        int(n),
                        vec![
                            assign(w, ld(adj, add(mul(v(best_i), int(n)), v(j)))),
                            if_(
                                lt(v(w), int(INF)),
                                vec![
                                    assign(alt, add(v(du), v(w))),
                                    if_(
                                        lt(v(alt), ld(dist, v(j))),
                                        vec![store(dist, v(j), v(alt))],
                                    ),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
    ));

    // output distances
    m.push(for_(i, int(0), int(n), vec![out(ld(dist, v(i)))]));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("dijkstra compiles");
    let init_mem = gen_input(seed, compiled.layout().array_base(adj));
    Benchmark {
        name: "dijkstra",
        category: Category::Control,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates the adjacency matrix used as the program input. `adj_base` is
/// the adjacency array's base address (0: it is the first declared array).
pub fn gen_input(seed: u64, adj_base: usize) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x64696a6b); // "dijk"
    let mut mem = vec![0u64; adj_base + NODES * NODES];
    for r in 0..NODES {
        for c in 0..NODES {
            let w = if r == c {
                0
            } else if rng.next_below(100) < 55 {
                1 + rng.next_below(20) as i64
            } else {
                INF
            };
            mem[adj_base + r * NODES + c] = w as u64;
        }
    }
    // Guarantee a ring so every node is reachable.
    for r in 0..NODES {
        let c = (r + 1) % NODES;
        let w = 1 + rng.next_below(20) as i64;
        mem[adj_base + r * NODES + c] = w as u64;
    }
    mem
}

/// Reference shortest-path distances computed in Rust, for testing.
pub fn reference(adj: &[i64]) -> Vec<i64> {
    let n = NODES;
    let mut dist = vec![INF; n];
    let mut visited = vec![false; n];
    dist[0] = 0;
    for _ in 0..n {
        let mut best = INF;
        let mut best_i = usize::MAX;
        for i in 0..n {
            if !visited[i] && dist[i] < best {
                best = dist[i];
                best_i = i;
            }
        }
        if best_i == usize::MAX {
            break;
        }
        visited[best_i] = true;
        for j in 0..n {
            let w = adj[best_i * n + j];
            if w < INF && dist[best_i] + w < dist[j] {
                dist[j] = dist[best_i] + w;
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference() {
        for seed in [1, 2, 3, 99] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            // adj is the first declared array, so it sits at base 0.
            let adj: Vec<i64> = b.init_mem[..NODES * NODES]
                .iter()
                .map(|&w| w as i64)
                .collect();
            let want: Vec<u64> = reference(&adj).iter().map(|&d| d as u64).collect();
            assert_eq!(r.output, want, "seed {seed}");
        }
    }

    #[test]
    fn all_nodes_reachable() {
        let b = build(5);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        for &d in &r.output {
            assert!((d as i64) < INF, "unreachable node in generated graph");
        }
    }
}
