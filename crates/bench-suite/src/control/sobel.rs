//! Sobel edge detection on a grayscale image (Table II: "Image processing",
//! control-sensitive).
//!
//! 3×3 Sobel gradients over the interior pixels of an 8×8 image, magnitude
//! approximated by `|gx| + |gy|` and clamped to 255 — the clamp and absolute
//! values give the kernel its per-pixel branches.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Image side length.
pub const SIDE: usize = 8;

/// Builds the benchmark with a random image derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let side = SIDE as i64;
    let mut m = ModuleBuilder::new("sobel");
    let img = m.array("img", SIDE * SIDE);
    let (r, c, gx, gy, mag, t) = (
        m.var("r"),
        m.var("c"),
        m.var("gx"),
        m.var("gy"),
        m.var("mag"),
        m.var("t"),
    );

    let px = |dr: i64, dc: i64| {
        ld(
            img,
            add(mul(add(v(r), int(dr)), int(side)), add(v(c), int(dc))),
        )
    };

    m.push(for_(
        r,
        int(1),
        int(side - 1),
        vec![for_(
            c,
            int(1),
            int(side - 1),
            vec![
                // gx = (p[-1][1] + 2 p[0][1] + p[1][1]) - (p[-1][-1] + 2 p[0][-1] + p[1][-1])
                assign(
                    gx,
                    sub(
                        add(add(px(-1, 1), mul(int(2), px(0, 1))), px(1, 1)),
                        add(add(px(-1, -1), mul(int(2), px(0, -1))), px(1, -1)),
                    ),
                ),
                // gy = (p[1][-1] + 2 p[1][0] + p[1][1]) - (p[-1][-1] + 2 p[-1][0] + p[-1][1])
                assign(
                    gy,
                    sub(
                        add(add(px(1, -1), mul(int(2), px(1, 0))), px(1, 1)),
                        add(add(px(-1, -1), mul(int(2), px(-1, 0))), px(-1, 1)),
                    ),
                ),
                if_(lt(v(gx), int(0)), vec![assign(gx, neg(v(gx)))]),
                if_(lt(v(gy), int(0)), vec![assign(gy, neg(v(gy)))]),
                assign(mag, add(v(gx), v(gy))),
                if_(gt(v(mag), int(255)), vec![assign(mag, int(255))]),
                // Simple edge threshold keeps a data-dependent branch in play.
                assign(t, int(0)),
                if_(gt(v(mag), int(96)), vec![assign(t, int(1))]),
                out(v(mag)),
                out(v(t)),
            ],
        )],
    ));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("sobel compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "sobel",
        category: Category::Control,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates a random 8-bit image (array `img` at base 0).
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x736f6265); // "sobe"
    (0..SIDE * SIDE).map(|_| rng.next_below(256)).collect()
}

/// Reference Sobel in Rust: per interior pixel `(magnitude, edge_flag)`.
pub fn reference(img: &[u64]) -> Vec<u64> {
    let side = SIDE as i64;
    let px = |r: i64, c: i64| img[(r * side + c) as usize] as i64;
    let mut outv = Vec::new();
    for r in 1..side - 1 {
        for c in 1..side - 1 {
            let gx = (px(r - 1, c + 1) + 2 * px(r, c + 1) + px(r + 1, c + 1))
                - (px(r - 1, c - 1) + 2 * px(r, c - 1) + px(r + 1, c - 1));
            let gy = (px(r + 1, c - 1) + 2 * px(r + 1, c) + px(r + 1, c + 1))
                - (px(r - 1, c - 1) + 2 * px(r - 1, c) + px(r - 1, c + 1));
            let mag = (gx.abs() + gy.abs()).min(255);
            outv.push(mag as u64);
            outv.push(u64::from(mag > 96));
        }
    }
    outv
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference() {
        for seed in [1, 2, 3] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            assert_eq!(r.output, reference(&b.init_mem), "seed {seed}");
        }
    }

    #[test]
    fn flat_image_has_no_edges() {
        let img = vec![128u64; SIDE * SIDE];
        let outv = reference(&img);
        assert!(outv.iter().all(|&x| x == 0));
    }

    #[test]
    fn output_covers_interior() {
        let b = build(1);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        assert_eq!(r.output.len(), (SIDE - 2) * (SIDE - 2) * 2);
    }
}
