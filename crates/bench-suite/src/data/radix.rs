//! LSD radix sort (Table II: "Sorting", data-sensitive).
//!
//! Four 4-bit counting-sort passes over 16-bit keys: histogram, exclusive
//! prefix sum, stable scatter into an auxiliary array, copy back. Almost
//! every instruction is address arithmetic or a memory move — corrupted
//! data flows straight to the output.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Number of keys sorted.
pub const KEYS: usize = 16;
/// Radix bits per pass.
pub const DIGIT_BITS: usize = 4;
/// Number of buckets per pass.
pub const BUCKETS: usize = 1 << DIGIT_BITS;
/// Key width in bits (number of passes × digit bits).
pub const KEY_BITS: usize = 16;

/// Builds the benchmark with random keys derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let n = KEYS as i64;
    let mut m = ModuleBuilder::new("radix");
    let keys = m.array("keys", KEYS);
    let aux = m.array("aux", KEYS);
    let count = m.array("count", BUCKETS);
    let (i, pass, d, acc, t, pos) = (
        m.var("i"),
        m.var("pass"),
        m.var("d"),
        m.var("acc"),
        m.var("t"),
        m.var("pos"),
    );

    let digit_of = |key_expr| {
        and(
            shr(key_expr, mul(v(pass), int(DIGIT_BITS as i64))),
            int(BUCKETS as i64 - 1),
        )
    };

    m.push(for_(
        pass,
        int(0),
        int((KEY_BITS / DIGIT_BITS) as i64),
        vec![
            // Histogram.
            for_(
                i,
                int(0),
                int(BUCKETS as i64),
                vec![store(count, v(i), int(0))],
            ),
            for_(
                i,
                int(0),
                int(n),
                vec![
                    assign(d, digit_of(ld(keys, v(i)))),
                    store(count, v(d), add(ld(count, v(d)), int(1))),
                ],
            ),
            // Exclusive prefix sum.
            assign(acc, int(0)),
            for_(
                i,
                int(0),
                int(BUCKETS as i64),
                vec![
                    assign(t, ld(count, v(i))),
                    store(count, v(i), v(acc)),
                    assign(acc, add(v(acc), v(t))),
                ],
            ),
            // Stable scatter.
            for_(
                i,
                int(0),
                int(n),
                vec![
                    assign(d, digit_of(ld(keys, v(i)))),
                    assign(pos, ld(count, v(d))),
                    store(aux, v(pos), ld(keys, v(i))),
                    store(count, v(d), add(v(pos), int(1))),
                ],
            ),
            // Copy back.
            for_(i, int(0), int(n), vec![store(keys, v(i), ld(aux, v(i)))]),
        ],
    ));

    m.push(for_(i, int(0), int(n), vec![out(ld(keys, v(i)))]));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("radix compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "radix",
        category: Category::Data,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates random 16-bit keys (array `keys` at base 0).
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x72616469); // "radi"
    (0..KEYS).map(|_| rng.next_below(1 << KEY_BITS)).collect()
}

/// Reference sorted keys.
pub fn reference(keys: &[u64]) -> Vec<u64> {
    let mut sorted = keys.to_vec();
    sorted.sort_unstable();
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn sorts_correctly() {
        for seed in [1, 2, 3, 4, 100] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            assert_eq!(r.output, reference(&b.init_mem), "seed {seed}");
        }
    }

    #[test]
    fn output_is_permutation_of_input() {
        let b = build(7);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        let mut input = b.init_mem.clone();
        let mut output = r.output.clone();
        input.sort_unstable();
        output.sort_unstable();
        assert_eq!(input, output);
    }

    #[test]
    fn already_sorted_input_is_stable() {
        let sorted: Vec<u64> = (0..KEYS as u64).map(|i| i * 3).collect();
        let b = build(1);
        let r = run(b.program(), &sorted, &b.exec_config());
        assert_eq!(r.output, sorted);
    }
}
