//! Iterative radix-2 FFT (Table II: "Signal processing", data-sensitive).
//!
//! In-place decimation-in-time FFT on 8 complex points with an in-program
//! bit-reversal permutation and twiddle factors supplied in the input image
//! (as a real table would be). Butterfly stages are pure float dataflow.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Transform size (power of two).
pub const N: usize = 8;
const LOG2N: usize = 3;

/// Builds the benchmark with a random complex input signal derived from
/// `seed`.
pub fn build(seed: u64) -> Benchmark {
    let n = N as i64;
    let mut m = ModuleBuilder::new("fft");
    let re = m.array("re", N);
    let im = m.array("im", N);
    let wre = m.array("wre", N / 2);
    let wim = m.array("wim", N / 2);
    let (i, j, k, s, m2, half, widx, tr, ti, ur, ui, wr, wi, tmp, bi) = (
        m.var("i"),
        m.var("j"),
        m.var("k"),
        m.var("s"),
        m.var("m2"),
        m.var("half"),
        m.var("widx"),
        m.var("tr"),
        m.var("ti"),
        m.var("ur"),
        m.var("ui"),
        m.var("wr"),
        m.var("wi"),
        m.var("tmp"),
        m.var("bi"),
    );

    // Bit-reversal permutation (3-bit reversal computed with shifts/masks).
    m.push(for_(
        i,
        int(0),
        int(n),
        vec![
            assign(
                j,
                or(
                    or(shl(and(v(i), int(1)), int(2)), and(v(i), int(2))),
                    shr(and(v(i), int(4)), int(2)),
                ),
            ),
            if_(
                lt(v(i), v(j)),
                vec![
                    assign(tmp, ld(re, v(i))),
                    store(re, v(i), ld(re, v(j))),
                    store(re, v(j), v(tmp)),
                    assign(tmp, ld(im, v(i))),
                    store(im, v(i), ld(im, v(j))),
                    store(im, v(j), v(tmp)),
                ],
            ),
        ],
    ));

    // Butterfly stages.
    m.push(for_(
        s,
        int(1),
        int(LOG2N as i64 + 1),
        vec![
            assign(m2, shl(int(1), v(s))),
            assign(half, shr(v(m2), int(1))),
            assign(k, int(0)),
            while_(
                lt(v(k), int(n)),
                vec![
                    for_(
                        j,
                        int(0),
                        v(half),
                        vec![
                            // Twiddle index: j * (n / m2).
                            assign(widx, mul(v(j), div(int(n), v(m2)))),
                            assign(wr, ld(wre, v(widx))),
                            assign(wi, ld(wim, v(widx))),
                            assign(bi, add(add(v(k), v(j)), v(half))),
                            // t = w * a[bi]
                            assign(
                                tr,
                                fsub(fmul(v(wr), ld(re, v(bi))), fmul(v(wi), ld(im, v(bi)))),
                            ),
                            assign(
                                ti,
                                fadd(fmul(v(wr), ld(im, v(bi))), fmul(v(wi), ld(re, v(bi)))),
                            ),
                            assign(ur, ld(re, add(v(k), v(j)))),
                            assign(ui, ld(im, add(v(k), v(j)))),
                            store(re, add(v(k), v(j)), fadd(v(ur), v(tr))),
                            store(im, add(v(k), v(j)), fadd(v(ui), v(ti))),
                            store(re, v(bi), fsub(v(ur), v(tr))),
                            store(im, v(bi), fsub(v(ui), v(ti))),
                        ],
                    ),
                    assign(k, add(v(k), v(m2))),
                ],
            ),
        ],
    ));

    // Spectra are emitted in fixed-point micro-units, like the original's
    // limited-precision output: faults in low mantissa bits mask.
    m.push(for_(
        i,
        int(0),
        int(n),
        vec![
            out(f2i(fmul(ld(re, v(i)), flt(1e6)))),
            out(f2i(fmul(ld(im, v(i)), flt(1e6)))),
        ],
    ));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("fft compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "fft",
        category: Category::Data,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Twiddle factors `w[k] = exp(-2πi·k/N)` for `k < N/2`.
pub fn twiddles() -> (Vec<f64>, Vec<f64>) {
    let mut wre = Vec::with_capacity(N / 2);
    let mut wim = Vec::with_capacity(N / 2);
    for k in 0..N / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / N as f64;
        wre.push(ang.cos());
        wim.push(ang.sin());
    }
    (wre, wim)
}

/// Generates the memory image: `re` (base 0), `im` (base N), twiddle tables.
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x66667421); // "fft!"
    let mut mem = Vec::with_capacity(3 * N);
    for _ in 0..N {
        mem.push((rng.next_f64() * 2.0 - 1.0).to_bits());
    }
    for _ in 0..N {
        mem.push((rng.next_f64() * 2.0 - 1.0).to_bits());
    }
    let (wre, wim) = twiddles();
    mem.extend(wre.iter().map(|x| x.to_bits()));
    mem.extend(wim.iter().map(|x| x.to_bits()));
    mem
}

/// Reference FFT mirroring the kernel's arithmetic exactly
/// (bit-reproducible given the same twiddle bits).
pub fn reference(re_in: &[f64], im_in: &[f64], wre: &[f64], wim: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = N;
    let mut re = re_in.to_vec();
    let mut im = im_in.to_vec();
    for i in 0..n {
        let j = ((i & 1) << 2) | (i & 2) | ((i & 4) >> 2);
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    for s in 1..=LOG2N {
        let m2 = 1usize << s;
        let half = m2 >> 1;
        let mut k = 0;
        while k < n {
            for j in 0..half {
                let widx = j * (n / m2);
                let (wr, wi) = (wre[widx], wim[widx]);
                let bi = k + j + half;
                let tr = wr * re[bi] - wi * im[bi];
                let ti = wr * im[bi] + wi * re[bi];
                let (ur, ui) = (re[k + j], im[k + j]);
                re[k + j] = ur + tr;
                im[k + j] = ui + ti;
                re[bi] = ur - tr;
                im[bi] = ui - ti;
            }
            k += m2;
        }
    }
    (re, im)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference_bit_exactly() {
        for seed in [1, 2, 3] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let f = |i: usize| f64::from_bits(b.init_mem[i]);
            let re: Vec<f64> = (0..N).map(f).collect();
            let im: Vec<f64> = (N..2 * N).map(f).collect();
            let wre: Vec<f64> = (2 * N..2 * N + N / 2).map(f).collect();
            let wim: Vec<f64> = (2 * N + N / 2..3 * N).map(f).collect();
            let (rre, rim) = reference(&re, &im, &wre, &wim);
            let mut want = Vec::new();
            for i in 0..N {
                want.push(((rre[i] * 1e6) as i64) as u64);
                want.push(((rim[i] * 1e6) as i64) as u64);
            }
            assert_eq!(r.output, want, "seed {seed}");
        }
    }

    #[test]
    fn dc_component_is_signal_sum() {
        let b = build(4);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        let re: Vec<f64> = (0..N).map(|i| f64::from_bits(b.init_mem[i])).collect();
        let dc = (r.output[0] as i64) as f64 / 1e6;
        let sum: f64 = re.iter().sum();
        assert!((dc - sum).abs() < 1e-5, "DC {dc} vs sum {sum}");
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let b = build(6);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        let f = |i: usize| f64::from_bits(b.init_mem[i]);
        let time_energy: f64 = (0..N).map(|i| f(i) * f(i) + f(N + i) * f(N + i)).sum();
        let freq_energy: f64 = (0..N)
            .map(|i| {
                let re = (r.output[2 * i] as i64) as f64 / 1e6;
                let im = (r.output[2 * i + 1] as i64) as f64 / 1e6;
                re * re + im * im
            })
            .sum::<f64>()
            / N as f64;
        assert!(
            (time_energy - freq_energy).abs() < 1e-3,
            "Parseval: {time_energy} vs {freq_energy}"
        );
    }
}
