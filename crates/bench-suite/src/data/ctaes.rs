//! AES-128 block encryption (Table II: "Bitcoin core", data-sensitive).
//!
//! The full 10-round FIPS-197 cipher over one block, with the S-box and the
//! pre-expanded round keys supplied in the input image (as the original
//! ctaes does with its precomputed tables). SubBytes is a table lookup,
//! ShiftRows a permutation through a scratch array, MixColumns a branchless
//! GF(2⁸) xtime dataflow — bit flips diffuse through the whole state, the
//! signature of a data-sensitive kernel.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::aes::{Aes128, SBOX};
use crate::{Benchmark, Category, Split, SplitMix64};

/// State bytes per block.
pub const BLOCK: usize = 16;
/// AES-128 rounds.
pub const ROUNDS: usize = 10;

/// Builds the benchmark with a random key/plaintext derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let mut m = ModuleBuilder::new("ctaes");
    let state = m.array("state", BLOCK);
    let tmp = m.array("tmp", BLOCK);
    let sbox = m.array("sbox", 256);
    let rkeys = m.array("rkeys", (ROUNDS + 1) * BLOCK);
    let (i, c, r, round, t, a, b2) = (
        m.var("i"),
        m.var("c"),
        m.var("r"),
        m.var("round"),
        m.var("t"),
        m.var("a"),
        m.var("b2"),
    );
    let (s0, s1, s2, s3) = (m.var("s0"), m.var("s1"), m.var("s2"), m.var("s3"));

    // Branchless xtime: (x << 1) ^ (((x >> 7) & 1) * 0x1b), masked to 8 bits.
    let xtime = |x: glaive_lang::Expr| {
        and(
            xor(
                shl(x.clone(), int(1)),
                mul(and(shr(x, int(7)), int(1)), int(0x1b)),
            ),
            int(0xff),
        )
    };

    let add_round_key = |round_expr: glaive_lang::Expr| {
        for_(
            i,
            int(0),
            int(BLOCK as i64),
            vec![store(
                state,
                v(i),
                xor(
                    ld(state, v(i)),
                    ld(rkeys, add(mul(round_expr.clone(), int(BLOCK as i64)), v(i))),
                ),
            )],
        )
    };

    let sub_bytes = || {
        for_(
            i,
            int(0),
            int(BLOCK as i64),
            vec![store(state, v(i), ld(sbox, ld(state, v(i))))],
        )
    };

    // new[4c + r] = old[4((c + r) % 4) + r], via the tmp array.
    let shift_rows = || {
        vec![
            for_(
                i,
                int(0),
                int(BLOCK as i64),
                vec![store(tmp, v(i), ld(state, v(i)))],
            ),
            for_(
                c,
                int(0),
                int(4),
                vec![for_(
                    r,
                    int(0),
                    int(4),
                    vec![store(
                        state,
                        add(mul(v(c), int(4)), v(r)),
                        ld(tmp, add(mul(rem(add(v(c), v(r)), int(4)), int(4)), v(r))),
                    )],
                )],
            ),
        ]
    };

    // col[r] ^= t ^ xtime(col[r] ^ col[(r+1)%4]) per column.
    let mix_columns = || {
        for_(
            c,
            int(0),
            int(4),
            vec![
                assign(s0, ld(state, mul(v(c), int(4)))),
                assign(s1, ld(state, add(mul(v(c), int(4)), int(1)))),
                assign(s2, ld(state, add(mul(v(c), int(4)), int(2)))),
                assign(s3, ld(state, add(mul(v(c), int(4)), int(3)))),
                assign(t, xor(xor(v(s0), v(s1)), xor(v(s2), v(s3)))),
                assign(a, xor(v(s0), v(s1))),
                assign(b2, xtime(v(a))),
                store(state, mul(v(c), int(4)), xor(xor(v(s0), v(t)), v(b2))),
                assign(a, xor(v(s1), v(s2))),
                assign(b2, xtime(v(a))),
                store(
                    state,
                    add(mul(v(c), int(4)), int(1)),
                    xor(xor(v(s1), v(t)), v(b2)),
                ),
                assign(a, xor(v(s2), v(s3))),
                assign(b2, xtime(v(a))),
                store(
                    state,
                    add(mul(v(c), int(4)), int(2)),
                    xor(xor(v(s2), v(t)), v(b2)),
                ),
                assign(a, xor(v(s3), v(s0))),
                assign(b2, xtime(v(a))),
                store(
                    state,
                    add(mul(v(c), int(4)), int(3)),
                    xor(xor(v(s3), v(t)), v(b2)),
                ),
            ],
        )
    };

    m.push(add_round_key(int(0)));
    let mut round_body = vec![sub_bytes()];
    round_body.extend(shift_rows());
    round_body.push(mix_columns());
    round_body.push(add_round_key(v(round)));
    m.push(for_(round, int(1), int(ROUNDS as i64), round_body));
    m.push(sub_bytes());
    m.extend(shift_rows());
    m.push(add_round_key(int(ROUNDS as i64)));
    m.push(for_(
        i,
        int(0),
        int(BLOCK as i64),
        vec![out(ld(state, v(i)))],
    ));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("ctaes compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "ctaes",
        category: Category::Data,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates the memory image: plaintext state (base 0), scratch (16),
/// S-box (32), round keys (288).
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x63746165); // "ctae"
    let mut key = [0u8; 16];
    let mut pt = [0u8; 16];
    for b in &mut key {
        *b = rng.next_below(256) as u8;
    }
    for b in &mut pt {
        *b = rng.next_below(256) as u8;
    }
    let aes = Aes128::new(&key);
    let mut mem = Vec::with_capacity(2 * BLOCK + 256 + 176);
    mem.extend(pt.iter().map(|&b| b as u64));
    mem.extend(std::iter::repeat_n(0, BLOCK)); // tmp scratch
    mem.extend(SBOX.iter().map(|&b| b as u64));
    mem.extend(aes.round_keys().iter().map(|&b| b as u64));
    mem
}

/// Reference ciphertext for the generated input image.
pub fn reference(init_mem: &[u64]) -> Vec<u64> {
    let mut pt = [0u8; 16];
    for (i, b) in pt.iter_mut().enumerate() {
        *b = init_mem[i] as u8;
    }
    // Round keys start after state + tmp + sbox.
    let rk_base = 2 * BLOCK + 256;
    let mut state = pt;
    let rk = |r: usize, i: usize| init_mem[rk_base + r * 16 + i] as u8;
    let xtime = |x: u8| (x << 1) ^ (((x >> 7) & 1) * 0x1b);
    for (i, b) in state.iter_mut().enumerate() {
        *b ^= rk(0, i);
    }
    for round in 1..=ROUNDS {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
        let old = state;
        for c in 0..4 {
            for r in 0..4 {
                state[4 * c + r] = old[4 * ((c + r) % 4) + r];
            }
        }
        if round != ROUNDS {
            for c in 0..4 {
                let col = [
                    state[4 * c],
                    state[4 * c + 1],
                    state[4 * c + 2],
                    state[4 * c + 3],
                ];
                let t = col[0] ^ col[1] ^ col[2] ^ col[3];
                for r in 0..4 {
                    state[4 * c + r] = col[r] ^ t ^ xtime(col[r] ^ col[(r + 1) % 4]);
                }
            }
        }
        for (i, b) in state.iter_mut().enumerate() {
            *b ^= rk(round, i);
        }
    }
    state.iter().map(|&b| b as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference_and_library_aes() {
        for seed in [1, 2, 3] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            assert_eq!(r.output, reference(&b.init_mem), "seed {seed}");
        }
    }

    #[test]
    fn program_encrypts_like_aes128_struct() {
        // Cross-check the in-ISA cipher against the Rust Aes128 on the same
        // key/plaintext by rebuilding the input deterministically.
        let seed = 5;
        let mut rng = SplitMix64::new(seed ^ 0x63746165);
        let mut key = [0u8; 16];
        let mut pt = [0u8; 16];
        for b in &mut key {
            *b = rng.next_below(256) as u8;
        }
        for b in &mut pt {
            *b = rng.next_below(256) as u8;
        }
        let aes = Aes128::new(&key);
        let want: Vec<u64> = aes.encrypt_block(&pt).iter().map(|&b| b as u64).collect();

        let b = build(seed);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        assert_eq!(r.output, want);
    }

    #[test]
    fn all_output_bytes_in_range() {
        let b = build(9);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        assert_eq!(r.output.len(), BLOCK);
        assert!(r.output.iter().all(|&x| x < 256));
    }
}
