//! Black–Scholes European option pricing (Table II: "Finance",
//! data-sensitive).
//!
//! Straight-line float dataflow per option: `d1`, `d2`, the cumulative
//! normal via the Abramowitz–Stegun polynomial, and the call/put prices.
//! Faults overwhelmingly corrupt data values rather than control decisions.

use glaive_lang::{dsl::*, mathlib, Expr, ModuleBuilder, Stmt, Var};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Number of options priced.
pub const OPTIONS: usize = 4;
/// Words per option: S, K, r, volatility, T.
pub const WORDS_PER_OPTION: usize = 5;

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// Cumulative normal distribution via the Abramowitz–Stegun 5-term
/// polynomial; returns statements leaving the value in a fresh variable.
fn cndf(m: &mut ModuleBuilder, x: Expr) -> (Vec<Stmt>, Expr) {
    let xv = m.fresh_var("cndx");
    let kv = m.fresh_var("cndk");
    let pdf = m.fresh_var("cndpdf");
    let result = m.fresh_var("cnd");
    let mut stmts = vec![
        assign(xv, x),
        assign(
            kv,
            fdiv(
                flt(1.0),
                fadd(flt(1.0), fmul(flt(0.231_641_9), fabs(v(xv)))),
            ),
        ),
    ];
    let (poly_stmts, poly_v) = mathlib::poly(
        m,
        kv,
        &[
            0.0,
            0.319_381_530,
            -0.356_563_782,
            1.781_477_937,
            -1.821_255_978,
            1.330_274_429,
        ],
    );
    stmts.extend(poly_stmts);
    let (exp_stmts, exp_v) = mathlib::exp(m, fneg(fmul(fmul(v(xv), v(xv)), flt(0.5))));
    stmts.extend(exp_stmts);
    stmts.push(assign(pdf, fmul(flt(INV_SQRT_2PI), exp_v)));
    stmts.push(assign(result, fsub(flt(1.0), fmul(v(pdf), poly_v))));
    stmts.push(if_(
        flt_(v(xv), flt(0.0)),
        vec![assign(result, fsub(flt(1.0), v(result)))],
    ));
    (stmts, v(result))
}

/// Builds the benchmark with random option parameters derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let mut m = ModuleBuilder::new("blackscholes");
    let params = m.array("params", OPTIONS * WORDS_PER_OPTION);
    let (i, base): (Var, Var) = (m.var("i"), m.var("base"));
    let (s, k, r, vol, t) = (m.var("s"), m.var("k"), m.var("r"), m.var("vol"), m.var("t"));
    let (sqrt_t, d1, d2, disc) = (m.var("sqrt_t"), m.var("d1"), m.var("d2"), m.var("disc"));

    let mut body = vec![
        assign(base, mul(v(i), int(WORDS_PER_OPTION as i64))),
        assign(s, ld(params, add(v(base), int(0)))),
        assign(k, ld(params, add(v(base), int(1)))),
        assign(r, ld(params, add(v(base), int(2)))),
        assign(vol, ld(params, add(v(base), int(3)))),
        assign(t, ld(params, add(v(base), int(4)))),
        assign(sqrt_t, fsqrt(v(t))),
    ];
    let (ln_stmts, ln_v) = mathlib::ln(&mut m, fdiv(v(s), v(k)));
    body.extend(ln_stmts);
    body.push(assign(
        d1,
        fdiv(
            fadd(
                ln_v,
                fmul(fadd(v(r), fmul(fmul(v(vol), v(vol)), flt(0.5))), v(t)),
            ),
            fmul(v(vol), v(sqrt_t)),
        ),
    ));
    body.push(assign(d2, fsub(v(d1), fmul(v(vol), v(sqrt_t)))));
    let (nd1_stmts, nd1) = cndf(&mut m, v(d1));
    body.extend(nd1_stmts);
    let nd1_var = m.fresh_var("nd1");
    body.push(assign(nd1_var, nd1));
    let (nd2_stmts, nd2) = cndf(&mut m, v(d2));
    body.extend(nd2_stmts);
    let nd2_var = m.fresh_var("nd2");
    body.push(assign(nd2_var, nd2));
    let (disc_stmts, disc_v) = mathlib::exp(&mut m, fneg(fmul(v(r), v(t))));
    body.extend(disc_stmts);
    body.push(assign(disc, disc_v));
    // Call price, then the put via parity.
    let call = m.fresh_var("call");
    body.push(assign(
        call,
        fsub(
            fmul(v(s), v(nd1_var)),
            fmul(fmul(v(k), v(disc)), v(nd2_var)),
        ),
    ));
    // Prices are emitted in fixed-point micro-dollars (the original prints
    // with limited precision, masking low mantissa bits).
    body.push(out(f2i(fmul(v(call), flt(1e6)))));
    body.push(out(f2i(fmul(
        fadd(fsub(v(call), v(s)), fmul(v(k), v(disc))),
        flt(1e6),
    ))));
    m.push(for_(i, int(0), int(OPTIONS as i64), body));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("blackscholes compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "blackscholes",
        category: Category::Data,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates option parameters (array `params` at base 0): spot 40–120,
/// strike 40–120, rate 1–6 %, volatility 10–50 %, maturity 0.25–2 years.
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x626c6b73); // "blks"
    let mut mem = Vec::with_capacity(OPTIONS * WORDS_PER_OPTION);
    for _ in 0..OPTIONS {
        mem.push((40.0 + rng.next_f64() * 80.0).to_bits());
        mem.push((40.0 + rng.next_f64() * 80.0).to_bits());
        mem.push((0.01 + rng.next_f64() * 0.05).to_bits());
        mem.push((0.10 + rng.next_f64() * 0.40).to_bits());
        mem.push((0.25 + rng.next_f64() * 1.75).to_bits());
    }
    mem
}

/// Reference Black–Scholes (call, put) prices with Rust std math.
pub fn reference(params: &[f64]) -> Vec<(f64, f64)> {
    fn cndf(x: f64) -> f64 {
        let k = 1.0 / (1.0 + 0.231_641_9 * x.abs());
        let poly = k
            * (0.319_381_530
                + k * (-0.356_563_782
                    + k * (1.781_477_937 + k * (-1.821_255_978 + k * 1.330_274_429))));
        let n = 1.0 - INV_SQRT_2PI * (-x * x * 0.5).exp() * poly;
        if x < 0.0 {
            1.0 - n
        } else {
            n
        }
    }
    params
        .chunks(WORDS_PER_OPTION)
        .map(|p| {
            let (s, k, r, vol, t) = (p[0], p[1], p[2], p[3], p[4]);
            let sqrt_t = t.sqrt();
            let d1 = ((s / k).ln() + (r + vol * vol * 0.5) * t) / (vol * sqrt_t);
            let d2 = d1 - vol * sqrt_t;
            let disc = (-r * t).exp();
            let call = s * cndf(d1) - k * disc * cndf(d2);
            let put = call - s + k * disc;
            (call, put)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference_approximately() {
        for seed in [1, 8, 21] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let params: Vec<f64> = b.init_mem.iter().map(|&x| f64::from_bits(x)).collect();
            let want = reference(&params);
            for (k, &(call, put)) in want.iter().enumerate() {
                let got_call = (r.output[2 * k] as i64) as f64 / 1e6;
                let got_put = (r.output[2 * k + 1] as i64) as f64 / 1e6;
                assert!(
                    (got_call - call).abs() < 1e-4,
                    "seed {seed} call[{k}]: {got_call} vs {call}"
                );
                assert!(
                    (got_put - put).abs() < 1e-4,
                    "seed {seed} put[{k}]: {got_put} vs {put}"
                );
            }
        }
    }

    #[test]
    fn prices_are_nonnegative_and_bounded() {
        let b = build(2);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        let params: Vec<f64> = b.init_mem.iter().map(|&x| f64::from_bits(x)).collect();
        for (k, p) in params.chunks(WORDS_PER_OPTION).enumerate() {
            let call = (r.output[2 * k] as i64) as f64 / 1e6;
            assert!(call >= -1e-9, "negative call price {call}");
            assert!(call <= p[0], "call {call} exceeds spot {}", p[0]);
        }
    }
}
