//! LU decomposition without pivoting (Table II: "Computing",
//! data-sensitive, **validation** split).
//!
//! In-place Doolittle factorisation of a diagonally dominant 4×4 matrix —
//! triple-nested float multiply-subtract dataflow. Like `inversek2j`, this
//! benchmark is never trained on; it validates transfer to unseen programs.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Matrix dimension.
pub const DIM: usize = 4;

/// Builds the benchmark with a random diagonally dominant matrix derived
/// from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let n = DIM as i64;
    let mut m = ModuleBuilder::new("lu");
    let a = m.array("a", DIM * DIM);
    let (i, j, k, factor) = (m.var("i"), m.var("j"), m.var("k"), m.var("factor"));
    let at = |r: glaive_lang::Expr, c: glaive_lang::Expr| ld(a, add(mul(r, int(n)), c));

    m.push(for_(
        k,
        int(0),
        int(n),
        vec![for_(
            i,
            add(v(k), int(1)),
            int(n),
            vec![
                assign(factor, fdiv(at(v(i), v(k)), at(v(k), v(k)))),
                store(a, add(mul(v(i), int(n)), v(k)), v(factor)),
                for_(
                    j,
                    add(v(k), int(1)),
                    int(n),
                    vec![store(
                        a,
                        add(mul(v(i), int(n)), v(j)),
                        fsub(at(v(i), v(j)), fmul(v(factor), at(v(k), v(j)))),
                    )],
                ),
            ],
        )],
    ));
    // Factor entries are emitted in fixed-point micro-units, like the
    // original's limited-precision output.
    m.push(for_(
        i,
        int(0),
        int(n * n),
        vec![out(f2i(fmul(ld(a, v(i)), flt(1e6))))],
    ));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("lu compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "lu",
        category: Category::Data,
        split: Split::Validation,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates a diagonally dominant matrix (array `a` at base 0), so the
/// factorisation is stable without pivoting.
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x6c755f5f); // "lu__"
    let mut a = [0.0f64; DIM * DIM];
    for r in 0..DIM {
        for c in 0..DIM {
            a[r * DIM + c] = rng.next_f64() * 2.0 - 1.0;
        }
        a[r * DIM + r] = 4.0 + rng.next_f64();
    }
    a.iter().map(|x| x.to_bits()).collect()
}

/// Reference in-place LU mirroring the kernel's arithmetic exactly.
pub fn reference(a_in: &[f64]) -> Vec<f64> {
    let n = DIM;
    let mut a = a_in.to_vec();
    for k in 0..n {
        for i in k + 1..n {
            let factor = a[i * n + k] / a[k * n + k];
            a[i * n + k] = factor;
            for j in k + 1..n {
                a[i * n + j] -= factor * a[k * n + j];
            }
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference_bit_exactly() {
        for seed in [1, 2, 3] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let a: Vec<f64> = b.init_mem.iter().map(|&x| f64::from_bits(x)).collect();
            let want: Vec<u64> = reference(&a)
                .iter()
                .map(|&x| ((x * 1e6) as i64) as u64)
                .collect();
            assert_eq!(r.output, want, "seed {seed}");
        }
    }

    #[test]
    fn l_times_u_reconstructs_matrix() {
        let b = build(8);
        let a_in: Vec<f64> = b.init_mem.iter().map(|&x| f64::from_bits(x)).collect();
        let lu = reference(&a_in);
        let n = DIM;
        for r in 0..n {
            for c in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    let l = if k < r {
                        lu[r * n + k]
                    } else if k == r {
                        1.0
                    } else {
                        0.0
                    };
                    let u = if k <= c { lu[k * n + c] } else { 0.0 };
                    sum += l * u;
                }
                assert!(
                    (sum - a_in[r * n + c]).abs() < 1e-9,
                    "reconstruction mismatch at ({r},{c})"
                );
            }
        }
    }
}
