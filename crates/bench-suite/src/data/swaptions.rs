//! Monte-Carlo swaption-style pricing (Table II: "Finance",
//! data-sensitive).
//!
//! A reduced HJM-flavoured kernel: per path, an in-program LCG drives a
//! uniform shock that evolves the underlying rate multiplicatively over a
//! few time steps; the discounted positive part of the terminal payoff is
//! averaged over paths. Long multiply/add dependence chains with almost no
//! data-dependent control — the archetypal data-sensitive benchmark.

use glaive_lang::{dsl::*, ModuleBuilder};

use crate::{Benchmark, Category, Split, SplitMix64};

/// Monte-Carlo paths.
pub const PATHS: usize = 6;
/// Time steps per path.
pub const STEPS: usize = 4;
/// Drift per year.
pub const MU: f64 = 0.04;
/// Volatility per sqrt-year.
pub const SIGMA: f64 = 0.25;
/// Maturity in years.
pub const MATURITY: f64 = 1.0;
/// Risk-free rate used for discounting.
pub const RATE: f64 = 0.03;

const DT: f64 = MATURITY / STEPS as f64;
const SQRT12: f64 = 3.464_101_615_137_754_5; // sqrt(12): unit-variance uniform
const TWO53: f64 = 9_007_199_254_740_992.0;
const LCG_A: i64 = 6_364_136_223_846_793_005;
const LCG_C: i64 = 1_442_695_040_888_963_407;

/// Builds the benchmark with spot/strike/seed inputs derived from `seed`.
pub fn build(seed: u64) -> Benchmark {
    let mut m = ModuleBuilder::new("swaptions");
    let params = m.array("params", 3); // S0, K, rng seed
    let (p, t, x, s, u, z, payoff, acc) = (
        m.var("p"),
        m.var("t"),
        m.var("x"),
        m.var("s"),
        m.var("u"),
        m.var("z"),
        m.var("payoff"),
        m.var("acc"),
    );
    let sqdt = DT.sqrt();
    let disc = (-RATE * MATURITY).exp();

    m.push(assign(acc, flt(0.0)));
    m.push(for_(
        p,
        int(0),
        int(PATHS as i64),
        vec![
            // Per-path seed: mix the path index into the base seed.
            assign(
                x,
                xor(
                    ld(params, int(2)),
                    mul(add(v(p), int(1)), int(0x9e37_79b9_7f4a_7c15u64 as i64)),
                ),
            ),
            assign(s, ld(params, int(0))),
            for_(
                t,
                int(0),
                int(STEPS as i64),
                vec![
                    assign(x, add(mul(v(x), int(LCG_A)), int(LCG_C))),
                    assign(u, fdiv(i2f(shr(v(x), int(11))), flt(TWO53))),
                    assign(z, fmul(fsub(v(u), flt(0.5)), flt(SQRT12))),
                    assign(
                        s,
                        fmul(
                            v(s),
                            fadd(flt(1.0 + MU * DT), fmul(flt(SIGMA * sqdt), v(z))),
                        ),
                    ),
                ],
            ),
            assign(payoff, fmax(fsub(v(s), ld(params, int(1))), flt(0.0))),
            // Fixed-point micro-unit output, like limited-precision printing.
            out(f2i(fmul(v(payoff), flt(1e6)))),
            assign(acc, fadd(v(acc), fmul(v(payoff), flt(disc)))),
        ],
    ));
    m.push(out(f2i(fmul(fdiv(v(acc), flt(PATHS as f64)), flt(1e6)))));

    m.reserve_mem(crate::MEM_PAD_WORDS);
    let compiled = m.compile().expect("swaptions compiles");
    let init_mem = gen_input(seed);
    Benchmark {
        name: "swaptions",
        category: Category::Data,
        split: Split::TrainTest,
        compiled,
        init_mem,
        hang_factor: 4,
    }
}

/// Generates `[S0, K, rng_seed]` at base 0.
pub fn gen_input(seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed ^ 0x73776170); // "swap"
    vec![
        (80.0 + rng.next_f64() * 40.0).to_bits(),
        (80.0 + rng.next_f64() * 40.0).to_bits(),
        rng.next_u64(),
    ]
}

/// Reference pricer mirroring the kernel's arithmetic exactly
/// (bit-reproducible).
pub fn reference(s0: f64, k: f64, rng_seed: u64) -> (Vec<f64>, f64) {
    let sqdt = DT.sqrt();
    let disc = (-RATE * MATURITY).exp();
    let mut payoffs = Vec::with_capacity(PATHS);
    let mut acc = 0.0f64;
    for p in 0..PATHS {
        let mut x = (rng_seed ^ ((p as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))) as i64;
        let mut s = s0;
        for _ in 0..STEPS {
            x = x.wrapping_mul(LCG_A).wrapping_add(LCG_C);
            let u = ((x as u64) >> 11) as i64 as f64 / TWO53;
            let z = (u - 0.5) * SQRT12;
            s *= (1.0 + MU * DT) + (SIGMA * sqdt) * z;
        }
        let payoff = (s - k).max(0.0);
        payoffs.push(payoff);
        acc += payoff * disc;
    }
    (payoffs, acc / PATHS as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::run;

    #[test]
    fn matches_reference_bit_exactly() {
        for seed in [1, 5, 17] {
            let b = build(seed);
            let r = run(b.program(), &b.init_mem, &b.exec_config());
            assert!(r.status.is_clean(), "seed {seed}: {:?}", r.status);
            let s0 = f64::from_bits(b.init_mem[0]);
            let k = f64::from_bits(b.init_mem[1]);
            let (payoffs, price) = reference(s0, k, b.init_mem[2]);
            let mut want: Vec<u64> = payoffs.iter().map(|&x| ((x * 1e6) as i64) as u64).collect();
            want.push(((price * 1e6) as i64) as u64);
            assert_eq!(r.output, want, "seed {seed}");
        }
    }

    #[test]
    fn price_is_mean_of_discounted_payoffs() {
        let b = build(9);
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        let disc = (-RATE * MATURITY).exp();
        let payoffs: Vec<f64> = r.output[..PATHS]
            .iter()
            .map(|&x| (x as i64) as f64 / 1e6)
            .collect();
        let price = (r.output[PATHS] as i64) as f64 / 1e6;
        let mean: f64 = payoffs.iter().map(|&p| p * disc).sum::<f64>() / PATHS as f64;
        assert!((price - mean).abs() < 1e-4);
        assert!(payoffs.iter().all(|&p| p >= 0.0));
    }
}
