//! The twelve GLAIVE paper benchmarks (Table II), re-implemented for the
//! GLAIVE ISA at reduced input sizes.
//!
//! | Category | Train/Test | Validation |
//! |---|---|---|
//! | Control-sensitive | dijkstra, astar, streamcluster, jmeint, sobel | inversek2j |
//! | Data-sensitive | blackscholes, swaptions, fft, radix, ctaes | lu |
//!
//! Each benchmark module exposes `build(seed) -> Benchmark`: the compiled
//! program, its input memory image, and metadata (category, dataset split).
//! Input sizes are scaled down from the paper so that an exhaustive-ish
//! fault-injection campaign completes in seconds while preserving each
//! kernel's instruction mix and dependence structure (see DESIGN.md §1).
//!
//! # Example
//!
//! ```
//! use glaive_bench_suite::suite;
//! use glaive_sim::run;
//!
//! let benchmarks = suite(7);
//! assert_eq!(benchmarks.len(), 12);
//! let b = &benchmarks[0];
//! let r = run(b.program(), &b.init_mem, &b.exec_config());
//! assert!(r.status.is_clean(), "{} failed: {:?}", b.name, r.status);
//! ```

mod aes;
pub mod control {
    //! Control-sensitive benchmarks (path search, vision, robotics, image
    //! processing, 3-D gaming).
    pub mod astar;
    pub mod dijkstra;
    pub mod inversek2j;
    pub mod jmeint;
    pub mod sobel;
    pub mod streamcluster;
}
pub mod data {
    //! Data-sensitive benchmarks (finance, signal processing, sorting,
    //! crypto, numerical computing).
    pub mod blackscholes;
    pub mod ctaes;
    pub mod fft;
    pub mod lu;
    pub mod radix;
    pub mod swaptions;
}

pub mod rv;

pub use aes::Aes128;
pub use rv::{rv_suite, RvKernel, RV_PAD_WORDS};

use glaive_lang::CompiledProgram;
use glaive_sim::ExecConfig;

/// Scratch data-memory words added to every benchmark beyond its live
/// arrays, emulating the mapped-but-unused address space of a real process:
/// a fault that flips a low or middle address bit then lands in mapped
/// memory (usually masked) instead of trapping, as it would under virtual
/// memory. Without this, almost every address-bit flip crashes and the
/// suite's outcome mix is far more crash-heavy than the paper's (Fig. 2).
pub const MEM_PAD_WORDS: usize = 1 << 17;

/// The paper's benchmark categorisation (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Control-sensitive: outcome dominated by branches on (possibly
    /// corrupted) comparisons.
    Control,
    /// Data-sensitive: outcome dominated by arithmetic dataflow.
    Data,
}

impl Category {
    /// The paper's single-letter tag (`C` / `D`).
    pub fn tag(self) -> char {
        match self {
            Category::Control => 'C',
            Category::Data => 'D',
        }
    }
}

/// Dataset split (Table II): round-robin train/test member, or held-out
/// validation program used to demonstrate transferability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Split {
    /// Participates in the round-robin n−1 train/test regime.
    TrainTest,
    /// Held out entirely; used only to validate transfer to unseen programs.
    Validation,
}

/// A compiled benchmark with its input image and metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as in Table II (lowercase).
    pub name: &'static str,
    /// Control- or data-sensitive.
    pub category: Category,
    /// Dataset split.
    pub split: Split,
    /// The compiled program and memory layout.
    pub compiled: CompiledProgram,
    /// Initial data-memory image holding the benchmark inputs.
    pub init_mem: Vec<u64>,
    /// Dynamic-instruction budget multiplier for fault runs; the hang
    /// detector allows `hang_factor ×` the golden run length.
    pub hang_factor: u64,
}

impl Benchmark {
    /// The executable program.
    pub fn program(&self) -> &glaive_isa::Program {
        self.compiled.program()
    }

    /// An execution budget generous enough for the golden run; fault
    /// campaigns derive a tighter budget from the golden run length.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            max_instrs: 4_000_000,
        }
    }
}

/// Builds all 12 benchmarks of Table II with deterministic inputs derived
/// from `seed`.
pub fn suite(seed: u64) -> Vec<Benchmark> {
    vec![
        control::dijkstra::build(seed),
        control::astar::build(seed),
        control::streamcluster::build(seed),
        control::jmeint::build(seed),
        control::sobel::build(seed),
        control::inversek2j::build(seed),
        data::blackscholes::build(seed),
        data::swaptions::build(seed),
        data::fft::build(seed),
        data::radix::build(seed),
        data::ctaes::build(seed),
        data::lu::build(seed),
    ]
}

/// A tiny deterministic PRNG (splitmix64) used by benchmark input
/// generators; avoids seeding differences across `rand` versions.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next pseudorandom `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_table_ii_composition() {
        let s = suite(1);
        assert_eq!(s.len(), 12);
        let control: Vec<_> = s
            .iter()
            .filter(|b| b.category == Category::Control)
            .collect();
        let data: Vec<_> = s.iter().filter(|b| b.category == Category::Data).collect();
        assert_eq!(control.len(), 6);
        assert_eq!(data.len(), 6);
        let validation: Vec<_> = s
            .iter()
            .filter(|b| b.split == Split::Validation)
            .map(|b| b.name)
            .collect();
        assert_eq!(validation, vec!["inversek2j", "lu"]);
    }

    #[test]
    fn names_are_unique() {
        let s = suite(1);
        let mut names: Vec<_> = s.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let f = SplitMix64::new(7).next_f64();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn different_seeds_give_different_inputs() {
        let a = control::dijkstra::build(1);
        let b = control::dijkstra::build(2);
        assert_ne!(a.init_mem, b.init_mem);
    }

    #[test]
    fn category_tags() {
        assert_eq!(Category::Control.tag(), 'C');
        assert_eq!(Category::Data.tag(), 'D');
    }
}
