//! ISA-B benchmark kernels for the cross-ISA transfer experiment.
//!
//! Four small [`RvIsa`] programs spanning the same sensitivity spectrum as
//! the Table-II suite — two data-dominated kernels (`rv_dotprod`,
//! `rv_xsum`), two control-dominated ones (`rv_gcd`, `rv_fib`) — written
//! directly in [`RvAsm`]. They are deliberately *not* ports of the twelve
//! ISA-A benchmarks: the point of `cross_isa` is evaluating a model on
//! programs no variant of which appeared in training.
//!
//! Like the main suite, every kernel pads its data memory ([`RV_PAD_WORDS`]
//! beyond the live arrays) so single address-bit flips usually land in
//! mapped memory instead of trapping, keeping the outcome mix comparable
//! to the ISA-A campaigns the model was trained on.

use glaive_isa::{Program, Reg, RvAluOp, RvAsm, RvBranchCond, RvImmOp, RvIsa};

use crate::SplitMix64;

/// Scratch words appended to every ISA-B kernel's data memory (see
/// [`crate::MEM_PAD_WORDS`] for the rationale; smaller here because the
/// kernels are tiny and their campaigns should stay sub-second).
pub const RV_PAD_WORDS: usize = 1 << 12;

/// A compiled ISA-B kernel with its input image.
#[derive(Debug, Clone)]
pub struct RvKernel {
    /// Kernel name (lowercase, `rv_` prefix).
    pub name: &'static str,
    /// The ISA-B program.
    pub program: Program<RvIsa>,
    /// Initial data-memory image holding the kernel inputs.
    pub init_mem: Vec<u64>,
    /// Hang-detection budget multiplier for fault runs.
    pub hang_factor: u64,
}

/// Builds all ISA-B kernels with deterministic inputs derived from `seed`.
pub fn rv_suite(seed: u64) -> Vec<RvKernel> {
    vec![dotprod(seed), xsum(seed), gcd(seed), fib(seed)]
}

const N: usize = 8;

/// Data-sensitive: dot product of two `N`-word vectors.
fn dotprod(seed: u64) -> RvKernel {
    let mut rng = SplitMix64::new(seed ^ 0xd07_0d07);
    let init_mem: Vec<u64> = (0..2 * N).map(|_| rng.next_below(1 << 20)).collect();

    let mut asm = RvAsm::new("rv_dotprod");
    asm.set_mem_words(2 * N + RV_PAD_WORDS);
    let loop_top = asm.label();
    asm.li(Reg(5), 0) // i
        .li(Reg(6), N as i32)
        .li(Reg(10), 0); // acc
    asm.bind(loop_top)
        .ld(Reg(7), Reg(5), 0) // a[i]
        .ld(Reg(8), Reg(5), N as i32) // b[i]
        .alu(RvAluOp::Mul, Reg(7), Reg(7), Reg(8))
        .alu(RvAluOp::Add, Reg(10), Reg(10), Reg(7))
        .addi(Reg(5), Reg(5), 1)
        .branch(RvBranchCond::Blt, Reg(5), Reg(6), loop_top)
        .ecall()
        .ebreak();
    RvKernel {
        name: "rv_dotprod",
        program: asm.finish().expect("rv_dotprod assembles"),
        init_mem,
        hang_factor: 4,
    }
}

/// Data-sensitive: a rotate-xor-add checksum over an `N`-word array,
/// exercising the shift and bitwise opcodes the dot product does not.
fn xsum(seed: u64) -> RvKernel {
    let mut rng = SplitMix64::new(seed ^ 0x5c3a_11ed);
    let init_mem: Vec<u64> = (0..N).map(|_| rng.next_u64()).collect();

    let mut asm = RvAsm::new("rv_xsum");
    asm.set_mem_words(N + RV_PAD_WORDS);
    let loop_top = asm.label();
    asm.li(Reg(5), 0) // i
        .li(Reg(6), N as i32)
        .li(Reg(10), 0); // acc
    asm.bind(loop_top)
        .ld(Reg(7), Reg(5), 0)
        .alu(RvAluOp::Xor, Reg(10), Reg(10), Reg(7))
        .alu_imm(RvImmOp::Slli, Reg(8), Reg(10), 13)
        .alu_imm(RvImmOp::Srli, Reg(9), Reg(10), 51)
        .alu(RvAluOp::Or, Reg(10), Reg(8), Reg(9)) // rotl 13
        .alu(RvAluOp::Add, Reg(10), Reg(10), Reg(7))
        .addi(Reg(5), Reg(5), 1)
        .branch(RvBranchCond::Blt, Reg(5), Reg(6), loop_top)
        .ecall()
        .ebreak();
    RvKernel {
        name: "rv_xsum",
        program: asm.finish().expect("rv_xsum assembles"),
        init_mem,
        hang_factor: 4,
    }
}

/// Control-sensitive: Euclid's algorithm over a seeded pair, the classic
/// data-dependent loop (`rem` never traps on ISA-B, so corrupted divisors
/// become SDCs or extra iterations rather than crashes).
fn gcd(seed: u64) -> RvKernel {
    let mut rng = SplitMix64::new(seed ^ 0x6cd0_06cd);
    let a = 1 + rng.next_below(1 << 16) as i32;
    let b = 1 + rng.next_below(1 << 16) as i32;

    let mut asm = RvAsm::new("rv_gcd");
    asm.set_mem_words(RV_PAD_WORDS);
    let loop_top = asm.label();
    let done = asm.label();
    asm.li(Reg(5), a).li(Reg(6), b);
    asm.bind(loop_top)
        .branch(RvBranchCond::Beq, Reg(6), Reg(0), done)
        .alu(RvAluOp::Rem, Reg(7), Reg(5), Reg(6))
        .mv(Reg(5), Reg(6))
        .mv(Reg(6), Reg(7))
        .j(loop_top);
    asm.bind(done).mv(Reg(10), Reg(5)).ecall().ebreak();
    RvKernel {
        name: "rv_gcd",
        program: asm.finish().expect("rv_gcd assembles"),
        init_mem: Vec::new(),
        hang_factor: 8,
    }
}

/// Control-sensitive: iterative Fibonacci with a seeded trip count; the
/// countdown register dominates the outcome (a corrupted counter hangs or
/// silently truncates the sequence).
fn fib(seed: u64) -> RvKernel {
    let mut rng = SplitMix64::new(seed ^ 0xf1b0_f1b0);
    let n = 8 + rng.next_below(16) as i32;

    let mut asm = RvAsm::new("rv_fib");
    asm.set_mem_words(RV_PAD_WORDS);
    let loop_top = asm.label();
    asm.li(Reg(5), 0).li(Reg(6), 1).li(Reg(7), n);
    asm.bind(loop_top)
        .alu(RvAluOp::Add, Reg(8), Reg(5), Reg(6))
        .mv(Reg(5), Reg(6))
        .mv(Reg(6), Reg(8))
        .addi(Reg(7), Reg(7), -1)
        .branch(RvBranchCond::Bne, Reg(7), Reg(0), loop_top)
        .mv(Reg(10), Reg(5))
        .ecall()
        .ebreak();
    RvKernel {
        name: "rv_fib",
        program: asm.finish().expect("rv_fib assembles"),
        init_mem: Vec::new(),
        hang_factor: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::{run, ExecConfig};

    #[test]
    fn every_kernel_runs_clean_and_produces_output() {
        for k in rv_suite(7) {
            let r = run(&k.program, &k.init_mem, &ExecConfig::default());
            assert!(r.status.is_clean(), "{} failed: {:?}", k.name, r.status);
            assert!(!r.output.is_empty(), "{} produced no output", k.name);
        }
    }

    #[test]
    fn kernels_are_deterministic_per_seed_and_vary_across_seeds() {
        let a = rv_suite(1);
        let b = rv_suite(1);
        let c = rv_suite(2);
        for ((x, y), z) in a.iter().zip(&b).zip(&c) {
            assert_eq!(x.program.instrs(), y.program.instrs());
            assert_eq!(x.init_mem, y.init_mem);
            let same_code = x.program.instrs() == z.program.instrs();
            let same_mem = x.init_mem == z.init_mem;
            assert!(
                !(same_code && same_mem),
                "{} identical across seeds",
                x.name
            );
        }
    }

    #[test]
    fn names_are_unique_and_prefixed() {
        let s = rv_suite(1);
        let mut names: Vec<_> = s.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), s.len());
        assert!(names.iter().all(|n| n.starts_with("rv_")));
    }
}
