//! Developer utility: prints static/dynamic size statistics for every
//! benchmark in the suite.
//!
//! Run with: `cargo run -p glaive-bench-suite --release --example stats`

fn main() {
    for b in glaive_bench_suite::suite(7) {
        let r = glaive_sim::run(b.program(), &b.init_mem, &b.exec_config());
        println!(
            "{:15} static={:5} dyn={:8} out={:3} status={:?}",
            b.name,
            b.program().len(),
            r.dyn_instrs,
            r.output.len(),
            r.status
        );
    }
}
