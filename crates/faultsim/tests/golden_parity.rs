//! Golden cross-refactor parity: the ISA-A pipeline must be bit-identical
//! before and after the `Isa`-trait refactor.
//!
//! The hashes below were captured from the concrete-ISA implementation that
//! predates the trait. Any change to campaign fingerprints, GLVFIT01 bytes,
//! or Table-I feature vectors for ISA-A programs fails this suite — which is
//! exactly the contract the refactor must uphold: generic code, identical
//! artifacts.

use glaive_cdfg::{Cdfg, CdfgConfig};
use glaive_faultsim::{Campaign, CampaignConfig};
use glaive_isa::{AluOp, Asm, BranchCond, CvtOp, FpuOp, FpuUnaryOp, Program, Reg};

/// FNV-1a, restated locally so the expectation is independent of the crate
/// internals it checks.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn f32s_to_bytes(xs: &[f32]) -> Vec<u8> {
    xs.iter().flat_map(|x| x.to_le_bytes()).collect()
}

/// A small program that touches every instruction kind of ISA-A: integer
/// ALU (reg and imm forms), FPU binary/unary, conversions, li/mov,
/// load/store, forward and backward branches, jump, out, halt.
fn kitchen_sink() -> Program {
    let mut asm = Asm::new("kitchen-sink");
    asm.set_mem_words(16);
    let skip = asm.label();
    let top = asm.label();
    asm.li(Reg(1), 5); // 0
    asm.li(Reg(2), 3); // 1
    asm.alu(AluOp::Add, Reg(3), Reg(1), Reg(2)); // 2
    asm.alu_imm(AluOp::Mul, Reg(4), Reg(3), 7); // 3
    asm.li_f(Reg(5), 2.5); // 4
    asm.cvt(CvtOp::IntToFloat, Reg(6), Reg(4)); // 5
    asm.fpu(FpuOp::FMul, Reg(7), Reg(5), Reg(6)); // 6
    asm.fpu_unary(FpuUnaryOp::FSqrt, Reg(8), Reg(7)); // 7
    asm.cvt(CvtOp::FloatToInt, Reg(9), Reg(8)); // 8
    asm.mov(Reg(10), Reg(9)); // 9
    asm.li(Reg(11), 0); // 10
    asm.store(Reg(10), Reg(11), 4); // 11
    asm.load(Reg(12), Reg(11), 4); // 12
    asm.branch(BranchCond::Gt, Reg(12), Reg(1), skip); // 13
    asm.out(Reg(1)); // 14 (guarded)
    asm.bind(skip);
    asm.li(Reg(13), 0); // 15
    asm.bind(top);
    asm.alu_imm(AluOp::Add, Reg(13), Reg(13), 1); // 16
    asm.branch(BranchCond::Lt, Reg(13), Reg(2), top); // 17
    asm.out(Reg(12)); // 18
    asm.jump(skip); // 19 — backward jump exercised? no: skip < 19, backward
    asm.finish().expect("labels resolve")
}

/// Loop-free exit for the kitchen sink: the jump at 19 targets pc 15, which
/// re-runs the counter loop forever — so campaigns use a bounded variant.
fn bounded_sink() -> Program {
    let mut asm = Asm::new("bounded-sink");
    asm.set_mem_words(16);
    let top = asm.label();
    asm.li(Reg(1), 5);
    asm.li(Reg(2), 3);
    asm.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
    asm.alu_imm(AluOp::Mul, Reg(4), Reg(3), 7);
    asm.li_f(Reg(5), 2.5);
    asm.cvt(CvtOp::IntToFloat, Reg(6), Reg(4));
    asm.fpu(FpuOp::FMul, Reg(7), Reg(5), Reg(6));
    asm.fpu_unary(FpuUnaryOp::FSqrt, Reg(8), Reg(7));
    asm.cvt(CvtOp::FloatToInt, Reg(9), Reg(8));
    asm.mov(Reg(10), Reg(9));
    asm.li(Reg(11), 0);
    asm.store(Reg(10), Reg(11), 4);
    asm.load(Reg(12), Reg(11), 4);
    asm.li(Reg(13), 0);
    asm.bind(top);
    asm.alu_imm(AluOp::Add, Reg(13), Reg(13), 1);
    asm.branch(BranchCond::Lt, Reg(13), Reg(2), top);
    asm.out(Reg(12));
    asm.out(Reg(13));
    asm.halt();
    asm.finish().expect("labels resolve")
}

fn campaign_config() -> CampaignConfig {
    CampaignConfig {
        bit_stride: 8,
        instances_per_site: 2,
        hang_factor: 4,
        threads: 1,
        predict_dead_defs: true,
    }
}

/// Campaign fingerprint of the bounded kitchen-sink program, captured
/// pre-refactor. The fingerprint preimage includes every encoded
/// instruction, so it also pins the ISA-A instruction encoding.
#[test]
fn campaign_fingerprint_is_stable() {
    let p = bounded_sink();
    let campaign = Campaign::try_new(&p, &[1, 2, 3], campaign_config()).expect("valid config");
    let plan = campaign.plan().expect("clean golden run");
    assert_eq!(
        plan.fingerprint, GOLDEN_FINGERPRINT,
        "campaign fingerprint drifted"
    );
}

/// GLVFIT01 serialisation of the full ground truth, captured pre-refactor.
#[test]
fn glvfit01_bytes_are_stable() {
    let p = bounded_sink();
    let truth = Campaign::try_new(&p, &[1, 2, 3], campaign_config())
        .expect("valid config")
        .run();
    let bytes = truth.to_bytes();
    assert_eq!(fnv1a(&bytes), GOLDEN_TRUTH_HASH, "GLVFIT01 bytes drifted");
    assert_eq!(bytes.len(), GOLDEN_TRUTH_LEN, "GLVFIT01 length drifted");
}

/// Table-I feature matrix (bit-level) and instruction-level features,
/// captured pre-refactor. Uses the branch-heavy kitchen-sink program so the
/// D_D/D_C/D_M analyses all contribute edges.
#[test]
fn table_i_features_are_stable() {
    let p = kitchen_sink();
    for (stride, expect_feat, expect_edges) in GOLDEN_FEATURES {
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: stride });
        let m = g.feature_matrix();
        assert_eq!(
            fnv1a(&f32s_to_bytes(&m)),
            expect_feat,
            "feature matrix drifted at stride {stride}"
        );
        assert_eq!(
            g.edge_count(),
            expect_edges,
            "edge count drifted at stride {stride}"
        );
    }
    let instr = glaive_cdfg::instruction_features(&p);
    assert_eq!(fnv1a(&f32s_to_bytes(&instr)), GOLDEN_INSTR_FEATURES);
}

/// Golden values captured from the pre-trait implementation. Regenerate by
/// running this test with `GOLDEN_PRINT=1` and copying the printed values —
/// but only if the drift is *intentional* (a format version bump).
const GOLDEN_FINGERPRINT: u64 = 0x63b1_b93e_a5b3_d13f;
const GOLDEN_TRUTH_HASH: u64 = 0x0c6c_630f_0b6e_ecf7;
const GOLDEN_TRUTH_LEN: usize = 7805;
const GOLDEN_INSTR_FEATURES: u64 = 0x1d62_5004_c8b7_90f5;
const GOLDEN_FEATURES: [(usize, u64, usize); 3] = [
    (8, 0xc588_5380_376a_21a5, 888),
    (16, 0x181d_4be5_c23f_c165, 268),
    (64, 0xac55_56f5_e682_aa35, 34),
];

#[test]
fn print_golden_values() {
    if std::env::var("GOLDEN_PRINT").is_err() {
        return;
    }
    let p = bounded_sink();
    let campaign = Campaign::try_new(&p, &[1, 2, 3], campaign_config()).expect("valid config");
    let plan = campaign.plan().expect("clean golden");
    let truth = campaign.run();
    let bytes = truth.to_bytes();
    println!("GOLDEN_FINGERPRINT: u64 = {:#x}", plan.fingerprint);
    println!("GOLDEN_TRUTH_HASH: u64 = {:#x}", fnv1a(&bytes));
    println!("GOLDEN_TRUTH_LEN: usize = {}", bytes.len());
    let ks = kitchen_sink();
    for stride in [8usize, 16, 64] {
        let g = Cdfg::build(&ks, &CdfgConfig { bit_stride: stride });
        println!(
            "stride {stride}: feat {:#x} edges {}",
            fnv1a(&f32s_to_bytes(&g.feature_matrix())),
            g.edge_count()
        );
    }
    println!(
        "GOLDEN_INSTR_FEATURES: u64 = {:#x}",
        fnv1a(&f32s_to_bytes(&glaive_cdfg::instruction_features(&ks)))
    );
}
