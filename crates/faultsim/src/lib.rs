//! Systematic bit-level fault-injection campaigns — the reproduction's
//! substitute for gem5-Approxilyzer (paper §II-C).
//!
//! Like Approxilyzer, the campaign does not inject at every dynamic
//! instruction instance. Fault sites are grouped into equivalence classes
//! keyed by *(static instruction, operand slot, bit)*; a small, evenly
//! spaced sample of dynamic instances represents each class. The outcome of
//! a class (its *bit label* for GNN training) is the modal outcome over its
//! samples, ties broken by the paper's severity ranking
//! `Crash → SDC → Masked`.
//!
//! The campaign also aggregates FI-derived instruction vulnerability tuples
//! ⟨I_C, I_S, I_M⟩ and the program vulnerability P_v (§II-B), which serve as
//! the ground truth that every estimator is scored against.
//!
//! # Example
//!
//! ```
//! use glaive_isa::{Asm, Reg, AluOp};
//! use glaive_faultsim::{Campaign, CampaignConfig};
//!
//! let mut asm = Asm::new("tiny");
//! asm.li(Reg(1), 21);
//! asm.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
//! asm.out(Reg(2));
//! asm.halt();
//! let p = asm.finish()?;
//!
//! let config = CampaignConfig { threads: 1, ..CampaignConfig::default() };
//! let truth = Campaign::try_new(&p, &[], config)?.run();
//! assert!(truth.total_injections() > 0);
//! let pv = truth.try_program_vulnerability()?;
//! let sum = pv.crash + pv.sdc + pv.masked;
//! assert!((sum - 1.0).abs() < 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod campaign;
mod checkpoint;
pub mod pruning;
mod serdes;
mod truth;

pub use campaign::{
    Campaign, CampaignConfig, CampaignError, CampaignPlan, CampaignProgress, InterruptReason,
    NoProgress, RunControl,
};
pub use checkpoint::{CampaignCheckpoint, CheckpointSink, FileCheckpoint, MemoryCheckpoint};
pub use serdes::TruthDecodeError;
pub use truth::{
    BitSite, GroundTruth, InjectionRecord, InstrVulnerability, PcResidency, Residency, TruthError,
    VulnTuple,
};
