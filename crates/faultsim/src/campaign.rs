use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use glaive_isa::Program;
use glaive_sim::{classify, run, run_with_fault, ExecConfig, FaultSpec, OperandSlot};

use crate::truth::{BitSite, GroundTruth, InjectionRecord};

/// Parameters of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Inject into every `bit_stride`-th bit of each operand register
    /// (1 = all 64 bits, the paper's setting; larger values subsample for
    /// quick tests).
    pub bit_stride: usize,
    /// Dynamic instances sampled per fault-site class (evenly spaced over
    /// the instruction's execution count) — the Approxilyzer-style
    /// equivalence-class pruning.
    pub instances_per_site: usize,
    /// Faulty runs get `hang_factor × golden_length + 1024` dynamic
    /// instructions before being declared a hang.
    pub hang_factor: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Statically predict provably-Masked outcomes (faults on dead
    /// definitions) instead of simulating them — Approxilyzer-style outcome
    /// prediction. Sound: predicted outcomes equal simulated ones.
    pub predict_dead_defs: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            bit_stride: 1,
            instances_per_site: 2,
            hang_factor: 4,
            threads: 0,
            predict_dead_defs: true,
        }
    }
}

impl CampaignConfig {
    /// A heavily subsampled configuration for unit tests and examples.
    pub fn quick() -> Self {
        CampaignConfig {
            bit_stride: 8,
            instances_per_site: 1,
            hang_factor: 4,
            threads: 0,
            predict_dead_defs: true,
        }
    }
}

/// Observer of campaign progress: called from worker threads as injection
/// batches complete, with the number of records finished so far and the
/// total planned. Implementations must be cheap and thread-safe.
pub trait CampaignProgress: Sync {
    /// `done` records out of `total` are complete (monotone per campaign,
    /// but calls from different workers may arrive out of order).
    fn injections(&self, done: usize, total: usize);
}

/// A [`CampaignProgress`] that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl CampaignProgress for NoProgress {
    fn injections(&self, _done: usize, _total: usize) {}
}

/// A systematic bit-level fault-injection campaign over one program.
#[derive(Debug)]
pub struct Campaign<'p> {
    program: &'p Program,
    init_mem: &'p [u64],
    config: CampaignConfig,
}

impl<'p> Campaign<'p> {
    /// Creates a campaign for `program` with the given input image.
    pub fn new(program: &'p Program, init_mem: &'p [u64], config: CampaignConfig) -> Self {
        assert!(config.bit_stride >= 1, "bit_stride must be at least 1");
        assert!(
            config.instances_per_site >= 1,
            "instances_per_site must be at least 1"
        );
        Campaign {
            program,
            init_mem,
            config,
        }
    }

    /// Enumerates the fault specs the campaign will inject, in deterministic
    /// order. Sites on never-executed instructions are pruned (a fault there
    /// cannot activate), mirroring Approxilyzer's reachability pruning.
    pub fn enumerate_sites(&self, exec_counts: &[u64]) -> Vec<FaultSpec> {
        let mut specs = Vec::new();
        for (pc, instr) in self.program.instrs().iter().enumerate() {
            let count = exec_counts[pc];
            if count == 0 {
                continue;
            }
            let mut slots: Vec<OperandSlot> = Vec::new();
            slots.extend((0..instr.uses().len()).map(OperandSlot::Use));
            slots.extend((0..instr.defs().len()).map(OperandSlot::Def));
            let samples = self.instance_samples(count);
            for slot in slots {
                for bit in (0..glaive_isa::WORD_BITS).step_by(self.config.bit_stride) {
                    for &instance in &samples {
                        specs.push(FaultSpec {
                            pc,
                            slot,
                            bit: bit as u8,
                            instance,
                        });
                    }
                }
            }
        }
        specs
    }

    /// Evenly spaced dynamic-instance samples in `0..count`.
    fn instance_samples(&self, count: u64) -> Vec<u64> {
        let k = (self.config.instances_per_site as u64).min(count);
        (0..k).map(|j| j * count / k).collect()
    }

    /// Runs the campaign: golden run, site enumeration, parallel injection,
    /// and aggregation into a [`GroundTruth`].
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt cleanly — vulnerability ground
    /// truth is undefined for a program that fails without faults.
    pub fn run(&self) -> GroundTruth {
        self.run_observed(&NoProgress)
    }

    /// Like [`Campaign::run`], reporting batch completions to `progress`.
    pub fn run_observed(&self, progress: &dyn CampaignProgress) -> GroundTruth {
        let golden_cfg = ExecConfig::default();
        let golden = run(self.program, self.init_mem, &golden_cfg);
        assert!(
            golden.status.is_clean(),
            "golden run of `{}` did not halt cleanly: {:?}",
            self.program.name(),
            golden.status
        );
        let specs = self.enumerate_sites(&golden.exec_counts);
        let fault_cfg = ExecConfig {
            max_instrs: golden.dyn_instrs * self.config.hang_factor + 1024,
        };

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };

        let mut records: Vec<Option<InjectionRecord>> = vec![None; specs.len()];

        // Approxilyzer-style outcome prediction: Def-slot faults on dead
        // definitions are provably Masked and need no simulation.
        let mut predicted = 0usize;
        if self.config.predict_dead_defs {
            let dead = crate::pruning::dead_defs(self.program);
            for (i, spec) in specs.iter().enumerate() {
                if matches!(spec.slot, OperandSlot::Def(_)) && dead[spec.pc] {
                    records[i] = Some(InjectionRecord {
                        site: BitSite {
                            pc: spec.pc,
                            slot: spec.slot,
                            bit: spec.bit,
                        },
                        instance: spec.instance,
                        outcome: glaive_sim::Outcome::Masked,
                    });
                    predicted += 1;
                }
            }
        }
        let total = specs.len();
        if threads <= 1 || specs.len() < 64 {
            let mut done = predicted;
            for (i, spec) in specs.iter().enumerate() {
                if records[i].is_none() {
                    records[i] = Some(self.inject(spec, &golden, &fault_cfg));
                    done += 1;
                    if done % 1024 == 0 {
                        progress.injections(done, total);
                    }
                }
            }
        } else {
            let skip: Vec<bool> = records.iter().map(Option::is_some).collect();
            let next = AtomicUsize::new(0);
            let completed = AtomicUsize::new(predicted);
            let sink: Mutex<Vec<(usize, InjectionRecord)>> =
                Mutex::new(Vec::with_capacity(specs.len()));
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            // Chunked work stealing keeps contention low.
                            let start = next.fetch_add(64, Ordering::Relaxed);
                            if start >= specs.len() {
                                break;
                            }
                            let end = (start + 64).min(specs.len());
                            let mut worked = 0;
                            for i in start..end {
                                if skip[i] {
                                    continue;
                                }
                                local.push((i, self.inject(&specs[i], &golden, &fault_cfg)));
                                worked += 1;
                            }
                            let done = completed.fetch_add(worked, Ordering::Relaxed) + worked;
                            progress.injections(done.min(total), total);
                        }
                        sink.lock().expect("sink lock").extend(local);
                    });
                }
            });
            for (i, rec) in sink.into_inner().expect("sink lock") {
                records[i] = Some(rec);
            }
        }
        progress.injections(total, total);

        let records: Vec<InjectionRecord> = records
            .into_iter()
            .map(|r| r.expect("all sites injected"))
            .collect();
        GroundTruth::new(self.program.name().to_string(), records, golden, predicted)
    }

    fn inject(
        &self,
        spec: &FaultSpec,
        golden: &glaive_sim::RunResult,
        cfg: &ExecConfig,
    ) -> InjectionRecord {
        let faulty = run_with_fault(self.program, self.init_mem, cfg, spec);
        InjectionRecord {
            site: BitSite {
                pc: spec.pc,
                slot: spec.slot,
                bit: spec.bit,
            },
            instance: spec.instance,
            outcome: classify(golden, &faulty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, BranchCond, Reg};
    use glaive_sim::Outcome;

    fn sum_program() -> Program {
        let mut asm = Asm::new("sum");
        let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(acc, 0);
        asm.li(i, 1);
        asm.li(one, 1);
        asm.li(lim, 10);
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i);
        asm.alu(AluOp::Add, i, i, one);
        asm.branch(BranchCond::Le, i, lim, top);
        asm.out(acc);
        asm.halt();
        asm.finish().expect("resolves")
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            bit_stride: 4,
            instances_per_site: 2,
            hang_factor: 4,
            threads: 1,
            predict_dead_defs: false,
        }
    }

    #[test]
    fn site_enumeration_skips_dead_code() {
        let mut asm = Asm::new("dead");
        let end = asm.label();
        asm.li(Reg(1), 1);
        asm.jump(end);
        asm.li(Reg(2), 2); // dead
        asm.bind(end);
        asm.out(Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let c = Campaign::new(&p, &[], config());
        let golden = run(&p, &[], &ExecConfig::default());
        let specs = c.enumerate_sites(&golden.exec_counts);
        assert!(
            specs.iter().all(|s| s.pc != 2),
            "dead instruction has no sites"
        );
        // li r1 has one def slot; out has one use slot; halt/jump none.
        let pcs: Vec<usize> = specs.iter().map(|s| s.pc).collect();
        assert!(pcs.contains(&0));
        assert!(pcs.contains(&3));
    }

    #[test]
    fn instance_samples_are_even_and_bounded() {
        let c = Campaign::new_unchecked_for_tests();
        assert_eq!(c.instance_samples(1), vec![0]);
        assert_eq!(c.instance_samples(2), vec![0, 1]);
        let s = c.instance_samples(10);
        assert_eq!(s, vec![0, 5]);
    }

    impl<'p> Campaign<'p> {
        fn new_unchecked_for_tests() -> Campaign<'static> {
            // A static leak is fine for a test helper.
            let p: &'static Program = Box::leak(Box::new(sum_program()));
            Campaign {
                program: p,
                init_mem: &[],
                config: config(),
            }
        }
    }

    #[test]
    fn campaign_produces_all_three_outcomes() {
        let p = sum_program();
        let truth = Campaign::new(&p, &[], config()).run();
        let outcomes: Vec<Outcome> = truth.records().iter().map(|r| r.outcome).collect();
        assert!(outcomes.contains(&Outcome::Masked), "some faults must mask");
        assert!(
            outcomes.contains(&Outcome::Sdc),
            "some faults must corrupt output"
        );
        // This loop program has no memory ops; crashes come from hangs
        // (corrupted loop counter) — with bit 32+ flips on the counter the
        // loop runs ~2^32 iterations, exceeding the budget.
        assert!(outcomes.contains(&Outcome::Crash), "some faults must hang");
    }

    #[test]
    fn parallel_and_serial_campaigns_agree() {
        let p = sum_program();
        let serial = Campaign::new(
            &p,
            &[],
            CampaignConfig {
                threads: 1,
                ..config()
            },
        )
        .run();
        let parallel = Campaign::new(
            &p,
            &[],
            CampaignConfig {
                threads: 4,
                ..config()
            },
        )
        .run();
        assert_eq!(serial.records(), parallel.records());
    }

    #[test]
    fn full_bit_coverage_with_stride_one() {
        let mut asm = Asm::new("one");
        asm.li(Reg(1), 7);
        asm.out(Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let cfg = CampaignConfig {
            bit_stride: 1,
            instances_per_site: 1,
            threads: 1,
            ..CampaignConfig::default()
        };
        let truth = Campaign::new(&p, &[], cfg).run();
        // li def slot (64) + out use slot (64) = 128 sites.
        assert_eq!(truth.total_injections(), 128);
        let labels = truth.bit_labels();
        assert_eq!(labels.len(), 128);
    }

    #[test]
    fn prediction_preserves_ground_truth() {
        let mut asm = Asm::new("deadmix");
        asm.li(Reg(1), 7); // dead (rewritten below)
        asm.li(Reg(1), 9);
        asm.li(Reg(2), 5); // dead (never read)
        asm.alu(AluOp::Add, Reg(3), Reg(1), Reg(1));
        asm.out(Reg(3));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let with = Campaign::new(
            &p,
            &[],
            CampaignConfig {
                predict_dead_defs: true,
                ..config()
            },
        )
        .run();
        let without = Campaign::new(
            &p,
            &[],
            CampaignConfig {
                predict_dead_defs: false,
                ..config()
            },
        )
        .run();
        assert!(with.predicted_injections() > 0, "dead defs exist");
        assert_eq!(without.predicted_injections(), 0);
        assert_eq!(with.records(), without.records(), "prediction is sound");
    }

    #[test]
    #[should_panic(expected = "did not halt cleanly")]
    fn dirty_golden_run_is_rejected() {
        let mut asm = Asm::new("trap");
        asm.li(Reg(1), 0);
        asm.alu(AluOp::Div, Reg(2), Reg(1), Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        Campaign::new(&p, &[], config()).run();
    }
}
