use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use glaive_isa::{GlaiveIsa, Isa, Program};
use glaive_sim::{
    classify, run, run_with_fault, ExecConfig, ExitStatus, FaultSpec, OperandSlot, Simulator,
};

use crate::checkpoint::{CampaignCheckpoint, CheckpointSink};
use crate::truth::{BitSite, GroundTruth, InjectionRecord};

/// Parameters of a fault-injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Inject into every `bit_stride`-th bit of each operand register
    /// (1 = all 64 bits, the paper's setting; larger values subsample for
    /// quick tests).
    pub bit_stride: usize,
    /// Dynamic instances sampled per fault-site class (evenly spaced over
    /// the instruction's execution count) — the Approxilyzer-style
    /// equivalence-class pruning.
    pub instances_per_site: usize,
    /// Faulty runs get `hang_factor × golden_length + 1024` dynamic
    /// instructions before being declared a hang.
    pub hang_factor: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Statically predict provably-Masked outcomes (faults on dead
    /// definitions) instead of simulating them — Approxilyzer-style outcome
    /// prediction. Sound: predicted outcomes equal simulated ones.
    pub predict_dead_defs: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            bit_stride: 1,
            instances_per_site: 2,
            hang_factor: 4,
            threads: 0,
            predict_dead_defs: true,
        }
    }
}

impl CampaignConfig {
    /// A heavily subsampled configuration for unit tests and examples.
    pub fn quick() -> Self {
        CampaignConfig {
            bit_stride: 8,
            instances_per_site: 1,
            hang_factor: 4,
            threads: 0,
            predict_dead_defs: true,
        }
    }
}

/// Observer of campaign progress: called from worker threads as injection
/// batches complete, with the number of records finished so far and the
/// total planned. Implementations must be cheap and thread-safe.
pub trait CampaignProgress: Sync {
    /// `done` records out of `total` are complete (monotone per campaign,
    /// but calls from different workers may arrive out of order).
    fn injections(&self, done: usize, total: usize);
}

/// A [`CampaignProgress`] that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl CampaignProgress for NoProgress {
    fn injections(&self, _done: usize, _total: usize) {}
}

static NO_PROGRESS: NoProgress = NoProgress;

/// Injection batch size: the work-stealing chunk in parallel campaigns and
/// the cancellation-poll granularity in serial ones.
const CHUNK: usize = 64;

/// Why a supervised campaign stopped before finishing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptReason {
    /// The caller's cancellation flag was raised.
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::Cancelled => write!(f, "cancelled"),
            InterruptReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// Errors surfaced by [`Campaign::run_supervised`].
///
/// Every failure of a supervised campaign comes back as a value: a
/// malformed benchmark, a golden run that does not halt cleanly, or an
/// interruption (cancellation / deadline) — in which case a checkpoint has
/// already been saved to the configured sink, if any, and a later run with
/// the same sink resumes where this one stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The campaign configuration is out of range (a stride or sample
    /// count of zero would enumerate no work or divide by zero).
    InvalidConfig {
        /// Which [`CampaignConfig`] field is out of range.
        field: &'static str,
    },
    /// The benchmark cannot form a runnable machine (e.g. oversized input
    /// image); the message carries the underlying constructor error.
    InvalidBenchmark {
        /// Program name.
        program: String,
        /// The underlying machine-construction error.
        message: String,
    },
    /// The golden (fault-free) run did not halt cleanly — vulnerability
    /// ground truth is undefined for a program that fails without faults.
    DirtyGolden {
        /// Program name.
        program: String,
        /// How the golden run terminated.
        status: ExitStatus,
    },
    /// The campaign was interrupted before completing; completed work has
    /// been checkpointed to the configured sink.
    Interrupted {
        /// Program name.
        program: String,
        /// What stopped the campaign.
        reason: InterruptReason,
        /// Injection records complete at the stop (simulated + predicted).
        completed: usize,
        /// Injections the full campaign plans.
        total: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::InvalidConfig { field } => {
                write!(f, "invalid campaign config: `{field}` must be at least 1")
            }
            CampaignError::InvalidBenchmark { program, message } => {
                write!(f, "benchmark `{program}` is malformed: {message}")
            }
            CampaignError::DirtyGolden { program, status } => write!(
                f,
                "golden run of `{program}` did not halt cleanly: {status:?}"
            ),
            CampaignError::Interrupted {
                program,
                reason,
                completed,
                total,
            } => write!(
                f,
                "campaign on `{program}` {reason} after {completed}/{total} injections"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Supervision parameters for [`Campaign::run_supervised`]: progress
/// reporting, cooperative cancellation, a wall-clock deadline, and
/// checkpointing. [`RunControl::new`] gives the unsupervised default
/// (silent, uncancellable, no deadline, no checkpoints).
#[derive(Clone, Copy)]
pub struct RunControl<'a> {
    /// Receives batch-completion callbacks.
    pub progress: &'a dyn CampaignProgress,
    /// Checked cooperatively between injection batches; raising it stops
    /// the campaign with [`InterruptReason::Cancelled`].
    pub cancel: Option<&'a AtomicBool>,
    /// Soft wall-clock deadline: the campaign stops at the next batch
    /// boundary past this instant with [`InterruptReason::DeadlineExceeded`].
    pub deadline: Option<Instant>,
    /// Where snapshots of completed injections are stored (and where a
    /// previous snapshot is loaded from on start).
    pub checkpoint: Option<&'a dyn CheckpointSink>,
    /// Save a snapshot every this many newly simulated injections
    /// (0 disables periodic snapshots; a final snapshot is still saved on
    /// interruption).
    pub checkpoint_interval: usize,
}

impl RunControl<'static> {
    /// The unsupervised default.
    pub fn new() -> RunControl<'static> {
        RunControl {
            progress: &NO_PROGRESS,
            cancel: None,
            deadline: None,
            checkpoint: None,
            checkpoint_interval: 0,
        }
    }
}

impl Default for RunControl<'static> {
    fn default() -> Self {
        RunControl::new()
    }
}

impl<'a> RunControl<'a> {
    /// Whether the supervised run should stop now: the cancellation flag
    /// beats the deadline. Campaign executors (in-process and the
    /// distributed coordinator) poll this at batch boundaries.
    pub fn interruption(&self) -> Option<InterruptReason> {
        if self.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return Some(InterruptReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(InterruptReason::DeadlineExceeded);
        }
        None
    }
}

/// The fully deterministic work order of a campaign: golden reference run,
/// enumerated fault specs in canonical order, per-fault execution budget,
/// statically predicted records, and the fingerprint binding GLVCKPT1
/// checkpoints to this exact campaign.
///
/// Both the in-process executor ([`Campaign::run_supervised`]) and the
/// distributed fabric (`glaive-campaign`) derive their work from the same
/// plan; because every field is a pure function of (program, input image,
/// config), any two parties that agree on those inputs agree on the plan —
/// which is what makes a distributed merge bit-identical to a serial run.
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// The fault-free reference run (clean halt guaranteed).
    pub golden: glaive_sim::RunResult,
    /// Every fault to inject, in canonical enumeration order.
    pub specs: Vec<FaultSpec>,
    /// Execution budget for each faulty run (hang detection).
    pub fault_cfg: ExecConfig,
    /// Records provable without simulation (dead-definition Masked
    /// outcomes), as `(index into specs, record)` pairs in strictly
    /// ascending index order. Empty when prediction is disabled.
    pub predicted: Vec<(usize, InjectionRecord)>,
    /// Binds checkpoints and distributed work units to this exact
    /// campaign: program content, input image, parameters, spec count.
    pub fingerprint: u64,
}

/// A systematic bit-level fault-injection campaign over one program.
///
/// Generic over the instruction-set backend `I` (default: ISA-A); the
/// injection semantics — flip one bit of one operand register at one
/// dynamic instance — are ISA-independent, and the checkpoint fingerprint
/// hashes the backend's own instruction encoding.
#[derive(Debug)]
pub struct Campaign<'p, I: Isa = GlaiveIsa> {
    program: &'p Program<I>,
    init_mem: &'p [u64],
    config: CampaignConfig,
}

impl<'p, I: Isa> Campaign<'p, I> {
    /// Creates a campaign for `program` with the given input image,
    /// validating the configuration.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidConfig`] when `bit_stride` or
    /// `instances_per_site` is zero.
    pub fn try_new(
        program: &'p Program<I>,
        init_mem: &'p [u64],
        config: CampaignConfig,
    ) -> Result<Self, CampaignError> {
        if config.bit_stride < 1 {
            return Err(CampaignError::InvalidConfig {
                field: "bit_stride",
            });
        }
        if config.instances_per_site < 1 {
            return Err(CampaignError::InvalidConfig {
                field: "instances_per_site",
            });
        }
        Ok(Campaign {
            program,
            init_mem,
            config,
        })
    }

    /// Enumerates the fault specs the campaign will inject, in deterministic
    /// order. Sites on never-executed instructions are pruned (a fault there
    /// cannot activate), mirroring Approxilyzer's reachability pruning.
    pub fn enumerate_sites(&self, exec_counts: &[u64]) -> Vec<FaultSpec> {
        let mut specs = Vec::new();
        for (pc, instr) in self.program.instrs().iter().enumerate() {
            let count = exec_counts[pc];
            if count == 0 {
                continue;
            }
            let mut slots: Vec<OperandSlot> = Vec::new();
            slots.extend((0..I::uses(instr).len()).map(OperandSlot::Use));
            slots.extend((0..I::defs(instr).len()).map(OperandSlot::Def));
            let samples = self.instance_samples(count);
            for slot in slots {
                for bit in (0..I::WORD_BITS).step_by(self.config.bit_stride) {
                    for &instance in &samples {
                        specs.push(FaultSpec {
                            pc,
                            slot,
                            bit: bit as u8,
                            instance,
                        });
                    }
                }
            }
        }
        specs
    }

    /// Evenly spaced dynamic-instance samples in `0..count`.
    fn instance_samples(&self, count: u64) -> Vec<u64> {
        let k = (self.config.instances_per_site as u64).min(count);
        (0..k).map(|j| j * count / k).collect()
    }

    /// Runs the campaign: golden run, site enumeration, parallel injection,
    /// and aggregation into a [`GroundTruth`].
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt cleanly — vulnerability ground
    /// truth is undefined for a program that fails without faults. Use
    /// [`Campaign::run_supervised`] to get failures as values.
    pub fn run(&self) -> GroundTruth {
        self.run_observed(&NoProgress)
    }

    /// Like [`Campaign::run`], reporting batch completions to `progress`.
    pub fn run_observed(&self, progress: &dyn CampaignProgress) -> GroundTruth {
        let ctrl = RunControl {
            progress,
            ..RunControl::new()
        };
        self.run_supervised(&ctrl).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A fingerprint binding a checkpoint to this exact campaign: program
    /// content, input image, campaign parameters, and planned injection
    /// count. Any mismatch makes a stored snapshot read as a cold start.
    fn fingerprint(&self, total_specs: usize) -> u64 {
        let mut bytes = Vec::new();
        for v in [
            self.config.bit_stride as u64,
            self.config.instances_per_site as u64,
            self.config.hang_factor,
            self.config.predict_dead_defs as u64,
            self.program.len() as u64,
            self.init_mem.len() as u64,
            total_specs as u64,
        ] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(self.program.name().as_bytes());
        for instr in self.program.instrs() {
            bytes.extend_from_slice(&I::encode(instr));
        }
        for &w in self.init_mem {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        crate::serdes::fnv1a(&bytes)
    }

    /// Computes the deterministic [`CampaignPlan`] for this campaign:
    /// golden run, site enumeration, fault execution budget, dead-def
    /// outcome prediction, and the checkpoint/distribution fingerprint.
    ///
    /// Every participant in a distributed campaign recomputes this plan
    /// locally from the shipped (program, input image, config) and
    /// cross-checks the fingerprint, so a coordinator and its workers can
    /// never silently disagree about which fault an index refers to.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidBenchmark`] for inputs that cannot form a
    /// machine and [`CampaignError::DirtyGolden`] when the fault-free run
    /// does not halt cleanly.
    pub fn plan(&self) -> Result<CampaignPlan, CampaignError> {
        let name = self.program.name().to_string();
        let golden_cfg = ExecConfig::default();
        if let Err(e) = Simulator::try_new(self.program, self.init_mem, &golden_cfg) {
            return Err(CampaignError::InvalidBenchmark {
                program: name,
                message: e.to_string(),
            });
        }
        let golden = run(self.program, self.init_mem, &golden_cfg);
        if !golden.status.is_clean() {
            return Err(CampaignError::DirtyGolden {
                program: name,
                status: golden.status,
            });
        }
        let specs = self.enumerate_sites(&golden.exec_counts);
        let fault_cfg = ExecConfig {
            max_instrs: golden.dyn_instrs * self.config.hang_factor + 1024,
        };

        // Approxilyzer-style outcome prediction: Def-slot faults on dead
        // definitions are provably Masked and need no simulation.
        let mut predicted: Vec<(usize, InjectionRecord)> = Vec::new();
        if self.config.predict_dead_defs {
            let dead = crate::pruning::dead_defs(self.program);
            for (i, spec) in specs.iter().enumerate() {
                if matches!(spec.slot, OperandSlot::Def(_)) && dead[spec.pc] {
                    predicted.push((
                        i,
                        InjectionRecord {
                            site: BitSite {
                                pc: spec.pc,
                                slot: spec.slot,
                                bit: spec.bit,
                            },
                            instance: spec.instance,
                            outcome: glaive_sim::Outcome::Masked,
                        },
                    ));
                }
            }
        }

        let fingerprint = self.fingerprint(specs.len());
        Ok(CampaignPlan {
            golden,
            specs,
            fault_cfg,
            predicted,
            fingerprint,
        })
    }

    /// Runs the campaign under supervision: every failure comes back as a
    /// typed [`CampaignError`], the injection loop checks `ctrl`'s
    /// cancellation flag and deadline cooperatively at batch boundaries,
    /// and completed injections are periodically snapshotted to `ctrl`'s
    /// checkpoint sink so an interrupted campaign resumes instead of
    /// restarting.
    ///
    /// Determinism: a resumed campaign produces a [`GroundTruth`] identical
    /// (byte-for-byte under [`GroundTruth::to_bytes`]) to an uninterrupted
    /// run, because injection records are keyed by the deterministic site
    /// enumeration order.
    ///
    /// # Errors
    ///
    /// [`CampaignError::InvalidBenchmark`] for inputs that cannot form a
    /// machine, [`CampaignError::DirtyGolden`] when the fault-free run does
    /// not halt cleanly, and [`CampaignError::Interrupted`] when cancelled
    /// or past the deadline (after saving a final checkpoint).
    pub fn run_supervised(&self, ctrl: &RunControl<'_>) -> Result<GroundTruth, CampaignError> {
        let name = self.program.name().to_string();
        let plan = self.plan()?;
        let CampaignPlan {
            golden,
            specs,
            fault_cfg,
            predicted: predicted_records,
            fingerprint,
        } = plan;

        let threads = if self.config.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.config.threads
        };

        let total = specs.len();
        let mut records: Vec<Option<InjectionRecord>> = vec![None; total];
        let predicted = predicted_records.len();
        for &(i, rec) in &predicted_records {
            records[i] = Some(rec);
        }

        // Resume: adopt simulated records from a stored snapshot whose
        // fingerprint matches this campaign. Predicted indices are already
        // filled (identically — prediction is deterministic), so only truly
        // simulated work is skipped. `base` holds the adopted records for
        // inclusion in future snapshots.
        let mut base: Vec<(usize, InjectionRecord)> = Vec::new();
        if let Some(sink) = ctrl.checkpoint {
            if let Some(ckpt) = sink.load().and_then(|b| CampaignCheckpoint::from_bytes(&b)) {
                if ckpt.fingerprint == fingerprint && ckpt.total == total {
                    for (i, rec) in ckpt.records {
                        if records[i].is_none() {
                            records[i] = Some(rec);
                            base.push((i, rec));
                        }
                    }
                }
            }
        }
        let resumed = base.len();

        let snapshot = |extra: &[(usize, InjectionRecord)]| {
            let mut recs: Vec<(usize, InjectionRecord)> =
                base.iter().chain(extra.iter()).copied().collect();
            recs.sort_unstable_by_key(|&(i, _)| i);
            CampaignCheckpoint {
                fingerprint,
                total,
                records: recs,
            }
            .to_bytes()
        };

        let mut interrupted: Option<InterruptReason> = None;
        let mut fresh: Vec<(usize, InjectionRecord)> = Vec::new();
        if threads <= 1 || total < 64 {
            let mut since_save = 0usize;
            let mut done = predicted + resumed;
            for (i, spec) in specs.iter().enumerate() {
                if records[i].is_some() {
                    continue;
                }
                if done.is_multiple_of(CHUNK) {
                    if let Some(reason) = ctrl.interruption() {
                        interrupted = Some(reason);
                        break;
                    }
                }
                let rec = self.inject(spec, &golden, &fault_cfg);
                records[i] = Some(rec);
                fresh.push((i, rec));
                done += 1;
                since_save += 1;
                if done.is_multiple_of(CHUNK) {
                    ctrl.progress.injections(done, total);
                }
                if let Some(sink) = ctrl.checkpoint {
                    if ctrl.checkpoint_interval > 0 && since_save >= ctrl.checkpoint_interval {
                        sink.save(&snapshot(&fresh));
                        since_save = 0;
                    }
                }
            }
        } else {
            let skip: Vec<bool> = records.iter().map(Option::is_some).collect();
            let next = AtomicUsize::new(0);
            let completed = AtomicUsize::new(predicted + resumed);
            let stop = AtomicBool::new(false);
            let workers_alive = AtomicUsize::new(threads);
            let shared: Mutex<Vec<(usize, InjectionRecord)>> = Mutex::new(Vec::new());
            let stop_reason: Mutex<Option<InterruptReason>> = Mutex::new(None);
            let supervise = ctrl.cancel.is_some()
                || ctrl.deadline.is_some()
                || (ctrl.checkpoint.is_some() && ctrl.checkpoint_interval > 0);
            std::thread::scope(|scope| {
                if supervise {
                    // Supervisor: polls for cancellation/deadline, raises
                    // the cooperative stop flag, and saves periodic
                    // snapshots — workers only ever append to `shared`.
                    scope.spawn(|| {
                        let mut last_saved = 0usize;
                        while workers_alive.load(Ordering::Acquire) > 0 {
                            if !stop.load(Ordering::Relaxed) {
                                if let Some(reason) = ctrl.interruption() {
                                    *stop_reason.lock().expect("reason lock") = Some(reason);
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                            if let Some(sink) = ctrl.checkpoint {
                                if ctrl.checkpoint_interval > 0 {
                                    let snap = {
                                        let shared = shared.lock().expect("shared lock");
                                        (shared.len() >= last_saved + ctrl.checkpoint_interval)
                                            .then(|| (shared.len(), snapshot(&shared)))
                                    };
                                    if let Some((len, bytes)) = snap {
                                        sink.save(&bytes);
                                        last_saved = len;
                                    }
                                }
                            }
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                    });
                }
                for _ in 0..threads {
                    scope.spawn(|| {
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            // Workers check for interruption at chunk
                            // boundaries themselves — the supervisor's poll
                            // interval alone would be too coarse for short
                            // campaigns.
                            if let Some(reason) = ctrl.interruption() {
                                let mut slot = stop_reason.lock().expect("reason lock");
                                slot.get_or_insert(reason);
                                stop.store(true, Ordering::Relaxed);
                                break;
                            }
                            // Chunked work stealing keeps contention low.
                            let start = next.fetch_add(CHUNK, Ordering::Relaxed);
                            if start >= total {
                                break;
                            }
                            let end = (start + CHUNK).min(total);
                            let mut local = Vec::with_capacity(CHUNK);
                            for i in start..end {
                                if skip[i] {
                                    continue;
                                }
                                local.push((i, self.inject(&specs[i], &golden, &fault_cfg)));
                            }
                            let worked = local.len();
                            shared.lock().expect("shared lock").extend(local);
                            let done = completed.fetch_add(worked, Ordering::Relaxed) + worked;
                            ctrl.progress.injections(done.min(total), total);
                        }
                        workers_alive.fetch_sub(1, Ordering::Release);
                    });
                }
            });
            fresh = shared.into_inner().expect("shared lock");
            interrupted = stop_reason.into_inner().expect("reason lock");
            for &(i, rec) in &fresh {
                records[i] = Some(rec);
            }
        }

        if let Some(reason) = interrupted {
            if let Some(sink) = ctrl.checkpoint {
                sink.save(&snapshot(&fresh));
            }
            let completed = records.iter().filter(|r| r.is_some()).count();
            return Err(CampaignError::Interrupted {
                program: name,
                reason,
                completed,
                total,
            });
        }
        ctrl.progress.injections(total, total);

        let records: Vec<InjectionRecord> = records
            .into_iter()
            .map(|r| r.expect("all sites injected"))
            .collect();
        Ok(GroundTruth::new(name, records, golden, predicted))
    }

    /// Simulates one fault injection and classifies it against the golden
    /// run. This is the distributed fabric's unit of work: a worker calls
    /// it for each spec of an assigned chunk, with the `golden` and `cfg`
    /// taken from its locally recomputed [`CampaignPlan`].
    pub fn inject(
        &self,
        spec: &FaultSpec,
        golden: &glaive_sim::RunResult,
        cfg: &ExecConfig,
    ) -> InjectionRecord {
        let faulty = run_with_fault(self.program, self.init_mem, cfg, spec);
        InjectionRecord {
            site: BitSite {
                pc: spec.pc,
                slot: spec.slot,
                bit: spec.bit,
            },
            instance: spec.instance,
            outcome: classify(golden, &faulty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, BranchCond, Reg};
    use glaive_sim::Outcome;

    fn sum_program() -> Program {
        let mut asm = Asm::new("sum");
        let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(acc, 0);
        asm.li(i, 1);
        asm.li(one, 1);
        asm.li(lim, 10);
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i);
        asm.alu(AluOp::Add, i, i, one);
        asm.branch(BranchCond::Le, i, lim, top);
        asm.out(acc);
        asm.halt();
        asm.finish().expect("resolves")
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            bit_stride: 4,
            instances_per_site: 2,
            hang_factor: 4,
            threads: 1,
            predict_dead_defs: false,
        }
    }

    fn camp<'p>(p: &'p Program, mem: &'p [u64], cfg: CampaignConfig) -> Campaign<'p> {
        Campaign::try_new(p, mem, cfg).expect("valid config")
    }

    #[test]
    fn try_new_rejects_zero_parameters() {
        let p = sum_program();
        let bad = Campaign::try_new(
            &p,
            &[],
            CampaignConfig {
                bit_stride: 0,
                ..config()
            },
        );
        assert_eq!(
            bad.expect_err("zero stride"),
            CampaignError::InvalidConfig {
                field: "bit_stride"
            }
        );
        let bad = Campaign::try_new(
            &p,
            &[],
            CampaignConfig {
                instances_per_site: 0,
                ..config()
            },
        );
        let err = bad.expect_err("zero instances");
        assert_eq!(
            err,
            CampaignError::InvalidConfig {
                field: "instances_per_site"
            }
        );
        assert!(err.to_string().contains("instances_per_site"));
    }

    #[test]
    fn site_enumeration_skips_dead_code() {
        let mut asm = Asm::new("dead");
        let end = asm.label();
        asm.li(Reg(1), 1);
        asm.jump(end);
        asm.li(Reg(2), 2); // dead
        asm.bind(end);
        asm.out(Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let c = camp(&p, &[], config());
        let golden = run(&p, &[], &ExecConfig::default());
        let specs = c.enumerate_sites(&golden.exec_counts);
        assert!(
            specs.iter().all(|s| s.pc != 2),
            "dead instruction has no sites"
        );
        // li r1 has one def slot; out has one use slot; halt/jump none.
        let pcs: Vec<usize> = specs.iter().map(|s| s.pc).collect();
        assert!(pcs.contains(&0));
        assert!(pcs.contains(&3));
    }

    #[test]
    fn instance_samples_are_even_and_bounded() {
        let c = Campaign::new_unchecked_for_tests();
        assert_eq!(c.instance_samples(1), vec![0]);
        assert_eq!(c.instance_samples(2), vec![0, 1]);
        let s = c.instance_samples(10);
        assert_eq!(s, vec![0, 5]);
    }

    impl<'p> Campaign<'p> {
        fn new_unchecked_for_tests() -> Campaign<'static> {
            // A static leak is fine for a test helper.
            let p: &'static Program = Box::leak(Box::new(sum_program()));
            Campaign {
                program: p,
                init_mem: &[],
                config: config(),
            }
        }
    }

    #[test]
    fn campaign_produces_all_three_outcomes() {
        let p = sum_program();
        let truth = camp(&p, &[], config()).run();
        let outcomes: Vec<Outcome> = truth.records().iter().map(|r| r.outcome).collect();
        assert!(outcomes.contains(&Outcome::Masked), "some faults must mask");
        assert!(
            outcomes.contains(&Outcome::Sdc),
            "some faults must corrupt output"
        );
        // This loop program has no memory ops; crashes come from hangs
        // (corrupted loop counter) — with bit 32+ flips on the counter the
        // loop runs ~2^32 iterations, exceeding the budget.
        assert!(outcomes.contains(&Outcome::Crash), "some faults must hang");
    }

    #[test]
    fn parallel_and_serial_campaigns_agree() {
        let p = sum_program();
        let serial = camp(
            &p,
            &[],
            CampaignConfig {
                threads: 1,
                ..config()
            },
        )
        .run();
        let parallel = camp(
            &p,
            &[],
            CampaignConfig {
                threads: 4,
                ..config()
            },
        )
        .run();
        assert_eq!(serial.records(), parallel.records());
    }

    #[test]
    fn full_bit_coverage_with_stride_one() {
        let mut asm = Asm::new("one");
        asm.li(Reg(1), 7);
        asm.out(Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let cfg = CampaignConfig {
            bit_stride: 1,
            instances_per_site: 1,
            threads: 1,
            ..CampaignConfig::default()
        };
        let truth = camp(&p, &[], cfg).run();
        // li def slot (64) + out use slot (64) = 128 sites.
        assert_eq!(truth.total_injections(), 128);
        let labels = truth.bit_labels();
        assert_eq!(labels.len(), 128);
    }

    #[test]
    fn prediction_preserves_ground_truth() {
        let mut asm = Asm::new("deadmix");
        asm.li(Reg(1), 7); // dead (rewritten below)
        asm.li(Reg(1), 9);
        asm.li(Reg(2), 5); // dead (never read)
        asm.alu(AluOp::Add, Reg(3), Reg(1), Reg(1));
        asm.out(Reg(3));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let with = camp(
            &p,
            &[],
            CampaignConfig {
                predict_dead_defs: true,
                ..config()
            },
        )
        .run();
        let without = camp(
            &p,
            &[],
            CampaignConfig {
                predict_dead_defs: false,
                ..config()
            },
        )
        .run();
        assert!(with.predicted_injections() > 0, "dead defs exist");
        assert_eq!(without.predicted_injections(), 0);
        assert_eq!(with.records(), without.records(), "prediction is sound");
    }

    #[test]
    #[should_panic(expected = "did not halt cleanly")]
    fn dirty_golden_run_is_rejected() {
        let mut asm = Asm::new("trap");
        asm.li(Reg(1), 0);
        asm.alu(AluOp::Div, Reg(2), Reg(1), Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        camp(&p, &[], config()).run();
    }

    #[test]
    fn supervised_reports_dirty_golden_as_value() {
        let mut asm = Asm::new("trap2");
        asm.li(Reg(1), 0);
        asm.alu(AluOp::Div, Reg(2), Reg(1), Reg(1));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let err = camp(&p, &[], config())
            .run_supervised(&RunControl::new())
            .expect_err("dirty golden run");
        assert!(matches!(err, CampaignError::DirtyGolden { .. }));
        assert!(err.to_string().contains("did not halt cleanly"));
    }

    /// Raises a cancellation flag once a threshold of injections completes —
    /// simulates an operator interrupt mid-campaign.
    struct CancelAt<'a> {
        threshold: usize,
        cancel: &'a AtomicBool,
    }

    impl CampaignProgress for CancelAt<'_> {
        fn injections(&self, done: usize, _total: usize) {
            if done >= self.threshold {
                self.cancel.store(true, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn interrupted_campaign_checkpoints_and_resumes_bit_identically() {
        let p = sum_program();
        let campaign = camp(&p, &[], config());
        let uninterrupted = campaign.run();
        let total = uninterrupted.total_injections();
        assert!(total > 256, "need enough work to interrupt mid-way");

        let cancel = AtomicBool::new(false);
        let sink = crate::checkpoint::MemoryCheckpoint::new();
        let progress = CancelAt {
            threshold: total / 4,
            cancel: &cancel,
        };
        let ctrl = RunControl {
            progress: &progress,
            cancel: Some(&cancel),
            checkpoint: Some(&sink),
            checkpoint_interval: 64,
            ..RunControl::new()
        };
        let err = campaign
            .run_supervised(&ctrl)
            .expect_err("campaign must be cancelled mid-way");
        let CampaignError::Interrupted {
            reason, completed, ..
        } = &err
        else {
            panic!("expected Interrupted, got {err}");
        };
        assert_eq!(*reason, InterruptReason::Cancelled);
        assert!(*completed < total, "cancellation must leave work undone");
        let ckpt_bytes = sink.load().expect("final checkpoint saved");
        let ckpt = CampaignCheckpoint::from_bytes(&ckpt_bytes).expect("checkpoint decodes");
        assert!(!ckpt.records.is_empty(), "checkpoint holds completed work");
        assert_eq!(ckpt.total, total);

        // Resume with no cancellation: must complete and reproduce the
        // uninterrupted ground truth byte-for-byte.
        let ctrl = RunControl {
            checkpoint: Some(&sink),
            checkpoint_interval: 64,
            ..RunControl::new()
        };
        let resumed = campaign.run_supervised(&ctrl).expect("resume completes");
        assert_eq!(resumed.to_bytes(), uninterrupted.to_bytes());
    }

    #[test]
    fn mismatched_checkpoint_is_a_cold_start() {
        let p = sum_program();
        let campaign = camp(&p, &[], config());
        let uninterrupted = campaign.run();
        // A snapshot from a *different* campaign configuration: right shape,
        // wrong fingerprint. Resume must ignore it entirely.
        let other = camp(
            &p,
            &[],
            CampaignConfig {
                bit_stride: 8,
                ..config()
            },
        );
        let cancel = AtomicBool::new(false);
        let sink = crate::checkpoint::MemoryCheckpoint::new();
        let progress = CancelAt {
            threshold: 64,
            cancel: &cancel,
        };
        other
            .run_supervised(&RunControl {
                progress: &progress,
                cancel: Some(&cancel),
                checkpoint: Some(&sink),
                checkpoint_interval: 32,
                ..RunControl::new()
            })
            .expect_err("cancelled");
        let truth = campaign
            .run_supervised(&RunControl {
                checkpoint: Some(&sink),
                ..RunControl::new()
            })
            .expect("completes despite foreign checkpoint");
        assert_eq!(truth.to_bytes(), uninterrupted.to_bytes());
    }

    #[test]
    fn expired_deadline_interrupts_promptly() {
        let p = sum_program();
        for threads in [1, 4] {
            let campaign = camp(
                &p,
                &[],
                CampaignConfig {
                    threads,
                    ..config()
                },
            );
            let ctrl = RunControl {
                deadline: Some(Instant::now() - std::time::Duration::from_secs(1)),
                ..RunControl::new()
            };
            let err = campaign
                .run_supervised(&ctrl)
                .expect_err("deadline already passed");
            assert!(
                matches!(
                    err,
                    CampaignError::Interrupted {
                        reason: InterruptReason::DeadlineExceeded,
                        ..
                    }
                ),
                "threads={threads}: expected deadline interruption, got {err}"
            );
        }
    }

    #[test]
    fn parallel_interruption_checkpoints_and_resumes_bit_identically() {
        let p = sum_program();
        let cfg = CampaignConfig {
            threads: 4,
            ..config()
        };
        let campaign = camp(&p, &[], cfg);
        let uninterrupted = campaign.run();
        let total = uninterrupted.total_injections();

        let cancel = AtomicBool::new(false);
        let sink = crate::checkpoint::MemoryCheckpoint::new();
        let progress = CancelAt {
            threshold: total / 4,
            cancel: &cancel,
        };
        let err = campaign
            .run_supervised(&RunControl {
                progress: &progress,
                cancel: Some(&cancel),
                checkpoint: Some(&sink),
                checkpoint_interval: 64,
                ..RunControl::new()
            })
            .expect_err("cancelled mid-way");
        assert!(matches!(err, CampaignError::Interrupted { .. }));
        let resumed = campaign
            .run_supervised(&RunControl {
                checkpoint: Some(&sink),
                ..RunControl::new()
            })
            .expect("resume completes");
        assert_eq!(resumed.to_bytes(), uninterrupted.to_bytes());
    }
}
