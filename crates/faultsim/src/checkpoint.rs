//! Campaign checkpointing: periodic snapshots of completed injection
//! outcomes, so an interrupted fault-injection campaign resumes from its
//! last checkpoint instead of starting over.
//!
//! Format `GLVCKPT1`: a little-endian stream with a magic/version header, a
//! fingerprint binding the snapshot to one (program, input, configuration)
//! triple, the completed `(site index, record)` pairs, and a trailing
//! FNV-1a checksum — the same integrity scheme as the `GLVFIT01` ground
//! truth artifacts. Decoding is infallible by design at the call site: any
//! truncated, tampered, foreign or version-mismatched snapshot reads as
//! *no checkpoint* and the campaign cold-starts.

use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

use glaive_sim::Outcome;

use crate::serdes::{fnv1a, put_slot, put_usize, read_slot, Reader};
use crate::truth::{BitSite, InjectionRecord};

/// Magic + format version of campaign checkpoints. Bump the trailing digit
/// on any layout change: decoders treat other versions as a cold start.
const MAGIC: &[u8; 8] = b"GLVCKPT1";

/// A snapshot of a partially-completed campaign: which injections (by
/// deterministic site-enumeration index) have finished, and their outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignCheckpoint {
    /// Binds the snapshot to one campaign: program content, input image,
    /// campaign parameters and planned injection count all feed this hash.
    /// A mismatch (different benchmark, different stride…) is a cold start.
    pub fingerprint: u64,
    /// Total planned injections, for progress reporting on resume.
    pub total: usize,
    /// Completed `(spec index, record)` pairs, in ascending index order.
    pub records: Vec<(usize, InjectionRecord)>,
}

impl CampaignCheckpoint {
    /// Serialises the snapshot to bytes in the `GLVCKPT1` format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.records.len() * 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        put_usize(&mut out, self.total);
        put_usize(&mut out, self.records.len());
        for (index, r) in &self.records {
            put_usize(&mut out, *index);
            put_usize(&mut out, r.site.pc);
            put_slot(&mut out, r.site.slot);
            out.push(r.site.bit);
            out.extend_from_slice(&r.instance.to_le_bytes());
            out.push(r.outcome.label() as u8);
        }
        let checksum = fnv1a(&out[MAGIC.len()..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Restores a snapshot previously produced by
    /// [`CampaignCheckpoint::to_bytes`]. Returns `None` for anything that
    /// is not an intact current-version checkpoint — truncation, byte
    /// corruption, a foreign file, or an older/newer format version — so
    /// callers uniformly treat a bad snapshot as a cold start.
    pub fn from_bytes(bytes: &[u8]) -> Option<CampaignCheckpoint> {
        if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != *MAGIC {
            return None;
        }
        let (head, tail) = bytes.split_at(bytes.len() - 8);
        let declared = u64::from_le_bytes(tail.try_into().ok()?);
        if fnv1a(&head[MAGIC.len()..]) != declared {
            return None;
        }
        let mut r = Reader::new(head, MAGIC.len());
        let fingerprint = r.u64().ok()?;
        let total = r.usize().ok()?;
        let count = r.count(8 + 8 + 9 + 1 + 8 + 1).ok()?;
        let mut records = Vec::with_capacity(count);
        let mut prev: Option<usize> = None;
        for _ in 0..count {
            let index = r.usize().ok()?;
            if index >= total || prev.is_some_and(|p| index <= p) {
                return None; // out of range or not strictly ascending
            }
            prev = Some(index);
            let pc = r.usize().ok()?;
            let slot = read_slot(&mut r).ok()?;
            let bit = r.u8().ok()?;
            let instance = r.u64().ok()?;
            let outcome = Outcome::from_label(r.u8().ok()? as usize)?;
            records.push((
                index,
                InjectionRecord {
                    site: BitSite { pc, slot, bit },
                    instance,
                    outcome,
                },
            ));
        }
        if r.pos != head.len() {
            return None; // trailing bytes after payload
        }
        Some(CampaignCheckpoint {
            fingerprint,
            total,
            records,
        })
    }
}

/// Durable storage for campaign checkpoints.
///
/// Sinks are dumb byte stores: the campaign owns the format and the
/// fingerprint validation. `save` and `clear` are best-effort — checkpoint
/// I/O failures must never fail the campaign itself — and `load` returns
/// `None` when nothing (usable) is stored.
pub trait CheckpointSink: Sync {
    /// The stored snapshot bytes, if any.
    fn load(&self) -> Option<Vec<u8>>;
    /// Stores a snapshot, replacing any previous one. Best-effort.
    fn save(&self, bytes: &[u8]);
    /// Removes the stored snapshot (called after the campaign completes).
    fn clear(&self);
}

/// A [`CheckpointSink`] backed by one file, written through a temp-file +
/// atomic-rename so a crash mid-save never leaves a torn snapshot (the
/// same discipline as the artifact cache).
#[derive(Debug, Clone)]
pub struct FileCheckpoint {
    path: PathBuf,
}

impl FileCheckpoint {
    /// A sink storing its snapshot at `path`.
    pub fn new(path: impl Into<PathBuf>) -> FileCheckpoint {
        FileCheckpoint { path: path.into() }
    }

    /// The snapshot location.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl CheckpointSink for FileCheckpoint {
    fn load(&self) -> Option<Vec<u8>> {
        std::fs::read(&self.path).ok()
    }

    fn save(&self, bytes: &[u8]) {
        let Some(parent) = self.path.parent() else {
            return;
        };
        if std::fs::create_dir_all(parent).is_err() {
            return;
        }
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(format!(".tmp-{}", std::process::id()));
        let tmp = PathBuf::from(tmp);
        if std::fs::write(&tmp, bytes).is_ok() {
            let _ = std::fs::rename(&tmp, &self.path);
        }
    }

    fn clear(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An in-memory [`CheckpointSink`] for tests and embedding.
#[derive(Debug, Default)]
pub struct MemoryCheckpoint {
    bytes: Mutex<Option<Vec<u8>>>,
    saves: Mutex<usize>,
}

impl MemoryCheckpoint {
    /// A fresh, empty sink.
    pub fn new() -> MemoryCheckpoint {
        MemoryCheckpoint::default()
    }

    /// How many snapshots have been saved into this sink.
    pub fn save_count(&self) -> usize {
        *self.saves.lock().expect("saves lock")
    }
}

impl CheckpointSink for MemoryCheckpoint {
    fn load(&self) -> Option<Vec<u8>> {
        self.bytes.lock().expect("bytes lock").clone()
    }

    fn save(&self, bytes: &[u8]) {
        *self.bytes.lock().expect("bytes lock") = Some(bytes.to_vec());
        *self.saves.lock().expect("saves lock") += 1;
    }

    fn clear(&self) {
        *self.bytes.lock().expect("bytes lock") = None;
    }
}

impl fmt::Display for CampaignCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "checkpoint {}/{} injections (fingerprint {:016x})",
            self.records.len(),
            self.total,
            self.fingerprint
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::OperandSlot;

    fn sample() -> CampaignCheckpoint {
        let rec = |i: usize, bit: u8, outcome| {
            (
                i,
                InjectionRecord {
                    site: BitSite {
                        pc: i * 2,
                        slot: OperandSlot::Use(0),
                        bit,
                    },
                    instance: i as u64,
                    outcome,
                },
            )
        };
        CampaignCheckpoint {
            fingerprint: 0xdead_beef_cafe_f00d,
            total: 100,
            records: vec![
                rec(0, 0, Outcome::Masked),
                rec(3, 8, Outcome::Sdc),
                rec(7, 16, Outcome::Crash),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ckpt = sample();
        let restored = CampaignCheckpoint::from_bytes(&ckpt.to_bytes()).expect("roundtrip");
        assert_eq!(restored, ckpt);
    }

    #[test]
    fn truncated_corrupt_and_foreign_snapshots_are_cold_starts() {
        let bytes = sample().to_bytes();
        assert!(CampaignCheckpoint::from_bytes(b"short").is_none());
        assert!(CampaignCheckpoint::from_bytes(b"NOTCKPT1-with-padding-bytes").is_none());
        for cut in [1usize, 9, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                CampaignCheckpoint::from_bytes(&bytes[..cut]).is_none(),
                "cut at {cut} must cold-start"
            );
        }
        for pos in [MAGIC.len(), bytes.len() / 2, bytes.len() - 2] {
            let mut tampered = bytes.clone();
            tampered[pos] ^= 0x20;
            assert!(
                CampaignCheckpoint::from_bytes(&tampered).is_none(),
                "flip at {pos} must cold-start"
            );
        }
    }

    #[test]
    fn version_mismatch_is_a_cold_start() {
        let mut bytes = sample().to_bytes();
        bytes[7] = b'9'; // pretend a future format version
        assert!(CampaignCheckpoint::from_bytes(&bytes).is_none());
    }

    #[test]
    fn non_ascending_or_out_of_range_indices_are_rejected() {
        let mut ckpt = sample();
        ckpt.records[1].0 = 0; // duplicate of records[0]
        assert!(CampaignCheckpoint::from_bytes(&ckpt.to_bytes()).is_none());
        let mut ckpt = sample();
        ckpt.records[2].0 = 100; // == total, out of range
        assert!(CampaignCheckpoint::from_bytes(&ckpt.to_bytes()).is_none());
    }

    #[test]
    fn file_sink_roundtrips_and_clears() {
        let dir = std::env::temp_dir().join(format!("glaive-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sink = FileCheckpoint::new(dir.join("nested").join("c.bin"));
        assert!(sink.load().is_none());
        sink.save(b"snapshot");
        assert_eq!(sink.load().as_deref(), Some(&b"snapshot"[..]));
        sink.clear();
        assert!(sink.load().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
