//! Static outcome prediction — the second half of gem5-Approxilyzer's
//! error-pruning strategy (paper §II-C): besides grouping dynamic instances
//! into equivalence classes, Approxilyzer *predicts* the outcome of some
//! fault classes without running them.
//!
//! This module implements the soundest such predictor for our ISA: a fault
//! in the **destination register of a dynamically dead definition** — a
//! value that is never read before being overwritten, on any path — is
//! provably Masked, because the corrupted register is clobbered before any
//! consumer observes it. Campaigns with `predict_dead_defs` enabled skip
//! simulation for those sites and record the predicted outcome.
//!
//! The analysis is static liveness over def-use chains; it is conservative
//! (it only prunes when *no* use can observe the def), so prediction never
//! changes ground truth, only how much of it is simulated — asserted by
//! `pruning_preserves_ground_truth` below and exercised per-benchmark in
//! the integration tests.

use glaive_cdfg::analysis::def_use_chains;
use glaive_isa::{Isa, Program};

/// Returns, for every instruction, whether its definition (if any) is
/// *dead*: no def-use chain connects it to a consumer.
///
/// Dead definitions are exactly the sites whose `Def`-slot faults are
/// provably Masked. Works for any instruction-set backend: the analysis
/// only consumes the backend's declared def/use sets.
pub fn dead_defs<I: Isa>(program: &Program<I>) -> Vec<bool> {
    let mut has_consumer = vec![false; program.len()];
    for e in def_use_chains(program) {
        has_consumer[e.def_pc] = true;
    }
    program
        .instrs()
        .iter()
        .enumerate()
        .map(|(pc, instr)| !I::defs(instr).is_empty() && !has_consumer[pc])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, BranchCond, Reg};

    #[test]
    fn detects_straightline_dead_defs() {
        let mut asm = Asm::new("t");
        asm.li(Reg(1), 1); // 0: dead (overwritten at 1)
        asm.li(Reg(1), 2); // 1: live
        asm.li(Reg(2), 3); // 2: dead (never read)
        asm.out(Reg(1)); // 3
        asm.halt(); // 4
        let p = asm.finish().expect("resolves");
        let dead = dead_defs(&p);
        assert_eq!(dead, vec![true, false, true, false, false]);
    }

    #[test]
    fn loop_carried_defs_are_live() {
        let mut asm = Asm::new("t");
        let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(acc, 0);
        asm.li(i, 0);
        asm.li(one, 1);
        asm.li(lim, 5);
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i); // reads its own previous def
        asm.alu(AluOp::Add, i, i, one);
        asm.branch(BranchCond::Lt, i, lim, top);
        asm.out(acc);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let dead = dead_defs(&p);
        assert!(
            dead.iter().all(|&d| !d),
            "every def in the loop is observed"
        );
    }

    #[test]
    fn def_live_on_one_branch_is_live() {
        let mut asm = Asm::new("t");
        let end = asm.label();
        asm.li(Reg(1), 7); // 0: read only on the fallthrough path
        asm.li(Reg(2), 0); // 1
        asm.branch(BranchCond::Eq, Reg(2), Reg(2), end); // 2: always taken
        asm.out(Reg(1)); // 3: unreachable, but a *static* consumer
        asm.bind(end);
        asm.halt(); // 4
        let p = asm.finish().expect("resolves");
        // Conservative: the static chain 0 → 3 keeps the def live even
        // though the path never executes.
        assert!(!dead_defs(&p)[0]);
    }
}
