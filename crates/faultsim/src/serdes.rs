//! Binary serialisation for [`GroundTruth`], so a fault-injection campaign
//! can be run once and its results reused as an on-disk artifact — the
//! costly half of the pipeline that GLAIVE's learned estimation amortises.
//!
//! Format: a little-endian stream with a magic/version header, the program
//! name, every injection record, the golden run, the predicted-injection
//! count, and a trailing FNV-1a checksum over the payload. No external
//! serialisation crates; stable across platforms of either endianness
//! (everything goes through `to_le_bytes`), mirroring the model format in
//! `glaive-gnn`'s `serdes`.

use std::fmt;

use glaive_sim::{ExitStatus, OperandSlot, Outcome, RunResult, Trap};

use crate::truth::{BitSite, GroundTruth, InjectionRecord, PcResidency, Residency};

/// Magic + format version. Bump the trailing digits on any layout change:
/// decoders reject other versions (the cache recomputes instead).
const MAGIC: &[u8; 8] = b"GLVFIT01";

/// Marker opening the optional residency extension section, appended after
/// the `predicted` count for truths carrying timing data. Artifacts without
/// residency stay byte-identical to the pre-extension layout, so the
/// default campaign path (and everything downstream of it — the artifact
/// cache, the distributed fabric's byte-compare) is unaffected by the
/// timing subsystem existing.
const RESIDENCY_MARKER: &[u8; 4] = b"RSDY";

/// Error returned when decoding serialised ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthDecodeError {
    /// The buffer does not start with the expected magic/version.
    BadMagic,
    /// The buffer ended before the declared content.
    Truncated,
    /// A structural invariant failed (bad tag, impossible value).
    Corrupt(&'static str),
    /// The trailing checksum does not match the payload.
    ChecksumMismatch,
}

impl fmt::Display for TruthDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthDecodeError::BadMagic => {
                write!(f, "not a GLAIVE ground-truth artifact (bad magic)")
            }
            TruthDecodeError::Truncated => write!(f, "ground-truth data truncated"),
            TruthDecodeError::Corrupt(what) => write!(f, "corrupt ground truth: {what}"),
            TruthDecodeError::ChecksumMismatch => write!(f, "ground-truth checksum mismatch"),
        }
    }
}

impl std::error::Error for TruthDecodeError {}

/// 64-bit FNV-1a over a byte slice — the integrity checksum and the same
/// hash family the artifact cache uses for content addressing.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8], pos: usize) -> Reader<'a> {
        Reader { buf, pos }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], TruthDecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(TruthDecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, TruthDecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u64(&mut self) -> Result<u64, TruthDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, TruthDecodeError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| TruthDecodeError::Corrupt("size overflows usize"))
    }

    /// A declared element count, sanity-bounded by the remaining bytes so a
    /// corrupt length cannot trigger a huge allocation.
    pub(crate) fn count(&mut self, min_elem_bytes: usize) -> Result<usize, TruthDecodeError> {
        let n = self.usize()?;
        if n > (self.buf.len() - self.pos) / min_elem_bytes.max(1) + 1 {
            return Err(TruthDecodeError::Truncated);
        }
        Ok(n)
    }
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

pub(crate) fn put_slot(out: &mut Vec<u8>, slot: OperandSlot) {
    match slot {
        OperandSlot::Use(i) => {
            out.push(0);
            put_usize(out, i);
        }
        OperandSlot::Def(i) => {
            out.push(1);
            put_usize(out, i);
        }
    }
}

pub(crate) fn read_slot(r: &mut Reader<'_>) -> Result<OperandSlot, TruthDecodeError> {
    let tag = r.u8()?;
    let idx = r.usize()?;
    match tag {
        0 => Ok(OperandSlot::Use(idx)),
        1 => Ok(OperandSlot::Def(idx)),
        _ => Err(TruthDecodeError::Corrupt("unknown operand-slot tag")),
    }
}

fn put_status(out: &mut Vec<u8>, status: ExitStatus) {
    match status {
        ExitStatus::Halted => out.push(0),
        ExitStatus::BudgetExceeded => out.push(1),
        ExitStatus::Trapped(trap) => {
            out.push(2);
            match trap {
                Trap::OutOfBoundsLoad { addr } => {
                    out.push(0);
                    out.extend_from_slice(&addr.to_le_bytes());
                }
                Trap::OutOfBoundsStore { addr } => {
                    out.push(1);
                    out.extend_from_slice(&addr.to_le_bytes());
                }
                Trap::DivByZero => {
                    out.push(2);
                    out.extend_from_slice(&0u64.to_le_bytes());
                }
                Trap::InvalidPc { pc } => {
                    out.push(3);
                    out.extend_from_slice(&(pc as u64).to_le_bytes());
                }
            }
        }
    }
}

fn read_status(r: &mut Reader<'_>) -> Result<ExitStatus, TruthDecodeError> {
    match r.u8()? {
        0 => Ok(ExitStatus::Halted),
        1 => Ok(ExitStatus::BudgetExceeded),
        2 => {
            let tag = r.u8()?;
            let arg = r.u64()?;
            let trap = match tag {
                0 => Trap::OutOfBoundsLoad { addr: arg },
                1 => Trap::OutOfBoundsStore { addr: arg },
                2 => Trap::DivByZero,
                3 => Trap::InvalidPc { pc: arg as usize },
                _ => return Err(TruthDecodeError::Corrupt("unknown trap tag")),
            };
            Ok(ExitStatus::Trapped(trap))
        }
        _ => Err(TruthDecodeError::Corrupt("unknown exit-status tag")),
    }
}

impl GroundTruth {
    /// Serialises the campaign result (records + golden run) to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);

        let name = self.program_name().as_bytes();
        put_usize(&mut out, name.len());
        out.extend_from_slice(name);

        put_usize(&mut out, self.records().len());
        for r in self.records() {
            put_usize(&mut out, r.site.pc);
            put_slot(&mut out, r.site.slot);
            out.push(r.site.bit);
            out.extend_from_slice(&r.instance.to_le_bytes());
            out.push(r.outcome.label() as u8);
        }

        let golden = self.golden();
        put_status(&mut out, golden.status);
        put_usize(&mut out, golden.output.len());
        for &v in &golden.output {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&golden.dyn_instrs.to_le_bytes());
        put_usize(&mut out, golden.exec_counts.len());
        for &v in &golden.exec_counts {
            out.extend_from_slice(&v.to_le_bytes());
        }
        put_usize(&mut out, self.predicted_injections());

        // Optional residency extension (timing-layer campaigns only).
        if let Some(res) = self.residency() {
            out.extend_from_slice(RESIDENCY_MARKER);
            out.extend_from_slice(&res.total_cycles().to_le_bytes());
            put_usize(&mut out, res.per_pc().len());
            for p in res.per_pc() {
                out.extend_from_slice(&p.sum.to_le_bytes());
                out.extend_from_slice(&p.count.to_le_bytes());
            }
        }

        let checksum = fnv1a(&out[MAGIC.len()..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Restores a campaign result previously produced by
    /// [`GroundTruth::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`TruthDecodeError`] for truncated, foreign, tampered or
    /// structurally inconsistent data — callers (the artifact cache) treat
    /// any error as a miss and recompute.
    pub fn from_bytes(bytes: &[u8]) -> Result<GroundTruth, TruthDecodeError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(TruthDecodeError::Truncated);
        }
        let (head, tail) = bytes.split_at(bytes.len() - 8);
        if &head[..MAGIC.len()] != MAGIC {
            return Err(TruthDecodeError::BadMagic);
        }
        let declared = u64::from_le_bytes(tail.try_into().expect("len 8"));
        if fnv1a(&head[MAGIC.len()..]) != declared {
            return Err(TruthDecodeError::ChecksumMismatch);
        }

        let mut r = Reader {
            buf: head,
            pos: MAGIC.len(),
        };
        let name_len = r.count(1)?;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| TruthDecodeError::Corrupt("program name is not UTF-8"))?;

        let record_count = r.count(8 + 9 + 1 + 8 + 1)?;
        let mut records = Vec::with_capacity(record_count);
        for _ in 0..record_count {
            let pc = r.usize()?;
            let slot = read_slot(&mut r)?;
            let bit = r.u8()?;
            let instance = r.u64()?;
            let outcome = Outcome::from_label(r.u8()? as usize)
                .ok_or(TruthDecodeError::Corrupt("unknown outcome label"))?;
            records.push(InjectionRecord {
                site: BitSite { pc, slot, bit },
                instance,
                outcome,
            });
        }

        let status = read_status(&mut r)?;
        let output_len = r.count(8)?;
        let output = (0..output_len).map(|_| r.u64()).collect::<Result<_, _>>()?;
        let dyn_instrs = r.u64()?;
        let exec_len = r.count(8)?;
        let exec_counts: Vec<u64> = (0..exec_len).map(|_| r.u64()).collect::<Result<_, _>>()?;
        let predicted = r.usize()?;
        if predicted > records.len() {
            return Err(TruthDecodeError::Corrupt(
                "predicted count exceeds record count",
            ));
        }

        // Optional residency extension: pre-extension artifacts end here
        // and decode with no residency attached; extended artifacts carry
        // a marker-prefixed section before the checksum.
        let residency = if r.pos != head.len() {
            if r.take(RESIDENCY_MARKER.len())? != RESIDENCY_MARKER {
                return Err(TruthDecodeError::Corrupt("unknown extension marker"));
            }
            let total_cycles = r.u64()?;
            let len = r.count(16)?;
            if len != exec_counts.len() {
                return Err(TruthDecodeError::Corrupt("residency table length mismatch"));
            }
            let per_pc = (0..len)
                .map(|_| {
                    Ok(PcResidency {
                        sum: r.u64()?,
                        count: r.u64()?,
                    })
                })
                .collect::<Result<Vec<_>, TruthDecodeError>>()?;
            Some(Residency::new(total_cycles, per_pc))
        } else {
            None
        };
        if r.pos != head.len() {
            return Err(TruthDecodeError::Corrupt("trailing bytes after payload"));
        }

        let truth = GroundTruth::new(
            name,
            records,
            RunResult {
                status,
                output,
                dyn_instrs,
                exec_counts,
            },
            predicted,
        );
        match residency {
            Some(res) => truth
                .with_residency(res)
                .map_err(|_| TruthDecodeError::Corrupt("residency table length mismatch")),
            None => Ok(truth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, CampaignConfig};
    use glaive_isa::{AluOp, Asm, BranchCond, Reg};

    fn sample_truth() -> GroundTruth {
        let mut asm = Asm::new("serdes-sample");
        let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(acc, 0);
        asm.li(i, 1);
        asm.li(one, 1);
        asm.li(lim, 6);
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i);
        asm.alu(AluOp::Add, i, i, one);
        asm.branch(BranchCond::Le, i, lim, top);
        asm.out(acc);
        asm.halt();
        let p = asm.finish().expect("resolves");
        let cfg = CampaignConfig {
            bit_stride: 8,
            instances_per_site: 2,
            hang_factor: 4,
            threads: 1,
            predict_dead_defs: true,
        };
        Campaign::try_new(&p, &[], cfg).expect("valid config").run()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let truth = sample_truth();
        let restored = GroundTruth::from_bytes(&truth.to_bytes()).expect("roundtrip");
        assert_eq!(restored.program_name(), truth.program_name());
        assert_eq!(restored.records(), truth.records());
        assert_eq!(restored.golden(), truth.golden());
        assert_eq!(
            restored.predicted_injections(),
            truth.predicted_injections()
        );
        assert_eq!(restored.bit_labels(), truth.bit_labels());
    }

    #[test]
    fn rejects_foreign_and_truncated_data() {
        assert!(matches!(
            GroundTruth::from_bytes(b"short"),
            Err(TruthDecodeError::Truncated)
        ));
        assert!(matches!(
            GroundTruth::from_bytes(b"WRONGMAGIC-and-some-padding-bytes"),
            Err(TruthDecodeError::BadMagic)
        ));
        let bytes = sample_truth().to_bytes();
        for cut in [9usize, 30, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                GroundTruth::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_any_single_byte_flip() {
        let bytes = sample_truth().to_bytes();
        // Flip a byte in the records region and one in the checksum itself.
        for pos in [MAGIC.len() + 4, bytes.len() / 2, bytes.len() - 3] {
            let mut tampered = bytes.clone();
            tampered[pos] ^= 0x40;
            assert!(
                GroundTruth::from_bytes(&tampered).is_err(),
                "flip at {pos} must fail"
            );
        }
    }

    /// `sample_truth` with a synthetic residency table attached.
    fn extended_truth() -> GroundTruth {
        let truth = sample_truth();
        let per_pc: Vec<PcResidency> = (0..truth.golden().exec_counts.len())
            .map(|pc| PcResidency {
                sum: (pc as u64) * 3 + 1,
                count: (pc as u64 % 2) + 1,
            })
            .collect();
        truth
            .with_residency(Residency::new(12_345, per_pc))
            .expect("table covers program")
    }

    #[test]
    fn residency_extension_roundtrips() {
        let truth = extended_truth();
        let restored = GroundTruth::from_bytes(&truth.to_bytes()).expect("roundtrip");
        assert_eq!(restored.records(), truth.records());
        assert_eq!(restored.residency(), truth.residency());
        assert_eq!(
            restored
                .try_residency_weighted_vulnerability()
                .expect("residency attached"),
            truth
                .try_residency_weighted_vulnerability()
                .expect("residency attached"),
        );
    }

    #[test]
    fn new_reader_opens_pre_extension_files_with_residency_absent() {
        // A truth without residency serialises to the pre-extension layout
        // byte-for-byte (no marker anywhere), which is exactly what an
        // old-format file on disk looks like.
        let plain = sample_truth().to_bytes();
        assert!(
            !plain.windows(4).any(|w| w == RESIDENCY_MARKER),
            "default artifact must not carry the extension"
        );
        let restored = GroundTruth::from_bytes(&plain).expect("old layout decodes");
        assert!(restored.residency().is_none());
        assert!(matches!(
            restored.try_residency_weighted_vulnerability(),
            Err(crate::TruthError::ResidencyUnavailable { .. })
        ));
    }

    #[test]
    fn stripping_the_extension_recovers_the_old_layout_exactly() {
        // The extension occupies exactly the span between `predicted` and
        // the checksum: removing it and re-sealing the checksum must yield
        // the plain serialisation byte-for-byte. This pins the layout — an
        // old-format reader sees extended files as "payload + extra bytes"
        // and rejects them cleanly (typed error, never a misparse), while
        // every artifact the default campaign path writes stays readable
        // by pre-extension code.
        let plain = sample_truth().to_bytes();
        let extended = extended_truth().to_bytes();
        assert!(extended.len() > plain.len());
        let mut stripped = extended[..plain.len() - 8].to_vec();
        let checksum = fnv1a(&stripped[MAGIC.len()..]);
        stripped.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(stripped, plain);
    }

    #[test]
    fn extended_artifact_rejects_every_byte_flip() {
        let bytes = extended_truth().to_bytes();
        for pos in 0..bytes.len() {
            let mut tampered = bytes.clone();
            tampered[pos] ^= 0x40;
            assert!(
                GroundTruth::from_bytes(&tampered).is_err(),
                "flip at {pos} must fail"
            );
        }
    }

    #[test]
    fn extended_artifact_rejects_every_truncation() {
        let bytes = extended_truth().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                GroundTruth::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn version_bump_invalidates_old_artifacts() {
        let mut bytes = sample_truth().to_bytes();
        bytes[7] = b'9'; // pretend a future format version
        assert!(matches!(
            GroundTruth::from_bytes(&bytes),
            Err(TruthDecodeError::BadMagic)
        ));
    }
}
