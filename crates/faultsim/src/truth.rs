use std::collections::BTreeMap;
use std::fmt;

use glaive_sim::{OperandSlot, Outcome, RunResult};

/// A ground-truth aggregation error: the campaign data cannot support the
/// requested statistic.
///
/// Surfaced as a value (through `glaive::Error` in the pipeline crate) so a
/// degenerate benchmark — one with no injectable fault sites — fails its own
/// preparation instead of panicking inside a worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthError {
    /// An outcome statistic was requested over zero observations.
    NoObservations {
        /// What was being aggregated (e.g. the program name).
        subject: String,
    },
    /// A residency-weighted statistic was requested but the campaign was
    /// run without the timing layer attached.
    ResidencyUnavailable {
        /// The program whose truth lacks residency data.
        subject: String,
    },
    /// Residency data does not cover the program (per-PC table length
    /// differs from the golden run's instruction count).
    ResidencyMismatch {
        /// Instructions in the golden run.
        expected: usize,
        /// Entries in the offered residency table.
        got: usize,
    },
}

impl fmt::Display for TruthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthError::NoObservations { subject } => {
                write!(
                    f,
                    "`{subject}` has no fault-injection observations; vulnerability \
                     statistics need at least one observation"
                )
            }
            TruthError::ResidencyUnavailable { subject } => {
                write!(
                    f,
                    "`{subject}` carries no residency data; re-run the campaign with \
                     the timing layer to weight vulnerability by residency"
                )
            }
            TruthError::ResidencyMismatch { expected, got } => {
                write!(
                    f,
                    "residency table covers {got} instructions but the program has \
                     {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TruthError {}

/// A bit-level fault-site equivalence class: all single-bit upsets of `bit`
/// in operand `slot` of static instruction `pc`, across dynamic instances.
///
/// One `BitSite` corresponds to one node of the bit-level CDFG and carries
/// one ternary training label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BitSite {
    /// Static instruction index.
    pub pc: usize,
    /// Operand slot within the instruction.
    pub slot: OperandSlot,
    /// Bit position within the operand register.
    pub bit: u8,
}

impl fmt::Display for BitSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc={} {} bit={}", self.pc, self.slot, self.bit)
    }
}

/// The outcome of one fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionRecord {
    /// The fault-site class this injection samples.
    pub site: BitSite,
    /// The dynamic instance at which the fault was injected.
    pub instance: u64,
    /// Masked / SDC / Crash.
    pub outcome: Outcome,
}

/// An instruction vulnerability tuple ⟨crash, sdc, masked⟩ with components
/// summing to 1 (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VulnTuple {
    /// Crash probability `I_C`.
    pub crash: f64,
    /// SDC probability `I_S`.
    pub sdc: f64,
    /// Masked probability `I_M`.
    pub masked: f64,
}

impl VulnTuple {
    /// A fully masked tuple.
    pub const MASKED: VulnTuple = VulnTuple {
        crash: 0.0,
        sdc: 0.0,
        masked: 1.0,
    };

    /// Builds a tuple from outcome counts, returning a typed error when all
    /// counts are zero.
    ///
    /// # Errors
    ///
    /// [`TruthError::NoObservations`] if `crash + sdc + masked == 0`.
    pub fn try_from_counts(crash: u64, sdc: u64, masked: u64) -> Result<VulnTuple, TruthError> {
        let total = crash + sdc + masked;
        if total == 0 {
            return Err(TruthError::NoObservations {
                subject: "outcome counts".to_string(),
            });
        }
        Ok(VulnTuple {
            crash: crash as f64 / total as f64,
            sdc: sdc as f64 / total as f64,
            masked: masked as f64 / total as f64,
        })
    }

    /// Probability that a fault is *not* masked (used for ranking).
    pub fn failure(&self) -> f64 {
        self.crash + self.sdc
    }

    /// The paper's program-vulnerability error contribution: the sum of
    /// absolute per-class differences against another tuple.
    pub fn abs_error(&self, other: &VulnTuple) -> f64 {
        (self.crash - other.crash).abs()
            + (self.sdc - other.sdc).abs()
            + (self.masked - other.masked).abs()
    }

    /// Severity-aware ranking key: crash-heavy first, then SDC-heavy,
    /// matching the `Crash → SDC → Masked` ordering of §II-B.
    pub fn ranking_key(&self) -> f64 {
        2.0 * self.crash + self.sdc
    }
}

/// Residency accounting for one static instruction: how long the values it
/// defines stay live (cycles from definition to last use before overwrite),
/// summed over all closed definition intervals of a golden run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcResidency {
    /// Summed residency cycles over all definitions at this PC.
    pub sum: u64,
    /// Number of definition intervals behind `sum`.
    pub count: u64,
}

impl PcResidency {
    /// Mean cycles a value defined here stayed live, or `None` when the
    /// instruction defined nothing.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        Some(self.sum as f64 / self.count as f64)
    }
}

/// Timing-derived residency data for one golden run, produced by the
/// `glaive-timing` observer and attachable to a [`GroundTruth`] via
/// [`GroundTruth::with_residency`].
///
/// Stored as exact integers (cycle sums and interval counts, not means) so
/// the GLVFIT01 extension serialises without rounding and two campaigns
/// over the same inputs produce byte-identical artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Residency {
    total_cycles: u64,
    per_pc: Vec<PcResidency>,
}

impl Residency {
    /// Assembles residency data: the run's total cycle count and one
    /// [`PcResidency`] per static instruction (indexed by PC).
    pub fn new(total_cycles: u64, per_pc: Vec<PcResidency>) -> Self {
        Residency {
            total_cycles,
            per_pc,
        }
    }

    /// Total cycles of the profiled golden run.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Per-instruction residency table, indexed by PC.
    pub fn per_pc(&self) -> &[PcResidency] {
        &self.per_pc
    }
}

/// Per-instruction FI result: the tuple plus the number of injections that
/// produced it (used as the program-vulnerability weight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstrVulnerability {
    /// Static instruction index.
    pub pc: usize,
    /// ⟨I_C, I_S, I_M⟩.
    pub tuple: VulnTuple,
    /// Number of injections performed on this instruction.
    pub injections: u64,
}

/// The complete result of a fault-injection campaign on one program.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    program_name: String,
    records: Vec<InjectionRecord>,
    golden: RunResult,
    predicted: usize,
    residency: Option<Residency>,
}

impl GroundTruth {
    pub(crate) fn new(
        program_name: String,
        records: Vec<InjectionRecord>,
        golden: RunResult,
        predicted: usize,
    ) -> Self {
        GroundTruth {
            program_name,
            records,
            golden,
            predicted,
            residency: None,
        }
    }

    /// Assembles a `GroundTruth` from externally produced parts — the
    /// merge-side constructor of the distributed campaign fabric, where
    /// records arrive from worker processes and are reassembled in
    /// canonical spec order before this call.
    ///
    /// `records` must already be in the campaign's deterministic site
    /// enumeration order (the coordinator guarantees this by indexing
    /// chunks into a dense table), and `predicted` counts how many of them
    /// were statically predicted rather than simulated.
    ///
    /// # Errors
    ///
    /// [`TruthError::NoObservations`] when `predicted` exceeds the number
    /// of records — such a value cannot have come from any real campaign
    /// and indicates a corrupt or malicious merge input.
    pub fn from_parts(
        program_name: String,
        records: Vec<InjectionRecord>,
        golden: RunResult,
        predicted: usize,
    ) -> Result<Self, TruthError> {
        if predicted > records.len() {
            return Err(TruthError::NoObservations {
                subject: format!(
                    "{program_name} (predicted count {predicted} exceeds {} records)",
                    records.len()
                ),
            });
        }
        Ok(GroundTruth::new(program_name, records, golden, predicted))
    }

    /// Name of the analysed program.
    pub fn program_name(&self) -> &str {
        &self.program_name
    }

    /// All injection records, in deterministic site order.
    pub fn records(&self) -> &[InjectionRecord] {
        &self.records
    }

    /// The golden (fault-free) run the outcomes were classified against.
    pub fn golden(&self) -> &RunResult {
        &self.golden
    }

    /// Total number of injection records (simulated + predicted).
    pub fn total_injections(&self) -> usize {
        self.records.len()
    }

    /// How many records were statically *predicted* (dead-definition
    /// pruning) rather than simulated.
    pub fn predicted_injections(&self) -> usize {
        self.predicted
    }

    /// Per-site ternary labels: the modal outcome over the site's sampled
    /// instances, ties broken by severity (Crash → SDC → Masked).
    pub fn bit_labels(&self) -> BTreeMap<BitSite, Outcome> {
        let mut counts: BTreeMap<BitSite, [u64; 3]> = BTreeMap::new();
        for r in &self.records {
            counts.entry(r.site).or_default()[r.outcome.label()] += 1;
        }
        counts
            .into_iter()
            .map(|(site, c)| {
                // Scanning in ascending severity and keeping any later
                // maximum makes ties resolve to the severer class, without a
                // fallible `max_by_key` over the outcome list.
                let mut label = Outcome::Masked;
                for o in [Outcome::Sdc, Outcome::Crash] {
                    if c[o.label()] >= c[label.label()] {
                        label = o;
                    }
                }
                (site, label)
            })
            .collect()
    }

    /// FI-derived instruction vulnerability ⟨I_C, I_S, I_M⟩ for every
    /// instruction with at least one injection, ordered by PC, with
    /// aggregation failures surfaced as a typed [`TruthError`].
    pub fn try_instruction_vulnerability(&self) -> Result<Vec<InstrVulnerability>, TruthError> {
        let mut counts: BTreeMap<usize, [u64; 3]> = BTreeMap::new();
        for r in &self.records {
            counts.entry(r.site.pc).or_default()[r.outcome.label()] += 1;
        }
        counts
            .into_iter()
            .map(|(pc, c)| {
                let tuple = VulnTuple::try_from_counts(
                    c[Outcome::Crash.label()],
                    c[Outcome::Sdc.label()],
                    c[Outcome::Masked.label()],
                )
                .map_err(|_| TruthError::NoObservations {
                    subject: format!("{} pc {pc}", self.program_name),
                })?;
                Ok(InstrVulnerability {
                    pc,
                    tuple,
                    injections: c.iter().sum(),
                })
            })
            .collect()
    }

    /// Program vulnerability P_v: instruction tuples weighted by their share
    /// of total injections (paper §II-B) — equivalently, the overall outcome
    /// fractions.
    ///
    /// # Errors
    ///
    /// [`TruthError::NoObservations`] if the campaign has no records.
    pub fn try_program_vulnerability(&self) -> Result<VulnTuple, TruthError> {
        let mut c = [0u64; 3];
        for r in &self.records {
            c[r.outcome.label()] += 1;
        }
        VulnTuple::try_from_counts(
            c[Outcome::Crash.label()],
            c[Outcome::Sdc.label()],
            c[Outcome::Masked.label()],
        )
        .map_err(|_| TruthError::NoObservations {
            subject: self.program_name.clone(),
        })
    }

    /// Timing-derived residency data, when the campaign was run with the
    /// timing layer attached.
    pub fn residency(&self) -> Option<&Residency> {
        self.residency.as_ref()
    }

    /// Attaches residency data from an observed golden run, enabling
    /// [`GroundTruth::try_residency_weighted_vulnerability`] and the
    /// optional GLVFIT01 extension section. Attaching nothing keeps the
    /// serialised artifact byte-identical to the pre-timing layout.
    ///
    /// # Errors
    ///
    /// [`TruthError::ResidencyMismatch`] when the residency table does not
    /// have exactly one entry per static instruction of the golden run.
    pub fn with_residency(mut self, residency: Residency) -> Result<GroundTruth, TruthError> {
        if residency.per_pc().len() != self.golden.exec_counts.len() {
            return Err(TruthError::ResidencyMismatch {
                expected: self.golden.exec_counts.len(),
                got: residency.per_pc().len(),
            });
        }
        self.residency = Some(residency);
        Ok(self)
    }

    /// Residency-weighted vulnerability, the AVF-style refinement of
    /// [`GroundTruth::try_instruction_vulnerability`]: each instruction's
    /// severity key (`2·I_C + I_S`) is scaled by the fraction of the run
    /// its defined values stay live (`mean residency / total cycles`).
    ///
    /// An instruction whose corrupt result is overwritten immediately
    /// scores near zero even if individual injections misbehaved badly; an
    /// instruction feeding a long-lived value keeps its full severity.
    /// Instructions that define nothing (stores, branches, output) score
    /// zero — this metric ranks *definition sites* for protection.
    ///
    /// Returns `(pc, weighted score)` pairs ordered by PC, for every
    /// instruction with at least one injection.
    ///
    /// # Errors
    ///
    /// [`TruthError::ResidencyUnavailable`] when no residency data is
    /// attached, and any error of the unweighted aggregation.
    pub fn try_residency_weighted_vulnerability(&self) -> Result<Vec<(usize, f64)>, TruthError> {
        let residency =
            self.residency
                .as_ref()
                .ok_or_else(|| TruthError::ResidencyUnavailable {
                    subject: self.program_name.clone(),
                })?;
        let total = residency.total_cycles().max(1) as f64;
        Ok(self
            .try_instruction_vulnerability()?
            .into_iter()
            .map(|iv| {
                let mean = residency
                    .per_pc()
                    .get(iv.pc)
                    .and_then(PcResidency::mean)
                    .unwrap_or(0.0);
                (iv.pc, iv.tuple.ranking_key() * (mean / total))
            })
            .collect())
    }

    /// Number of instructions that received at least one injection.
    pub fn instructions_covered(&self) -> usize {
        let mut pcs: Vec<usize> = self.records.iter().map(|r| r.site.pc).collect();
        pcs.sort_unstable();
        pcs.dedup();
        pcs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_sim::ExitStatus;

    fn record(pc: usize, bit: u8, outcome: Outcome) -> InjectionRecord {
        InjectionRecord {
            site: BitSite {
                pc,
                slot: OperandSlot::Use(0),
                bit,
            },
            instance: 0,
            outcome,
        }
    }

    fn truth(records: Vec<InjectionRecord>) -> GroundTruth {
        GroundTruth::new(
            "t".into(),
            records,
            RunResult {
                status: ExitStatus::Halted,
                output: vec![],
                dyn_instrs: 10,
                exec_counts: vec![10],
            },
            0,
        )
    }

    fn counts(crash: u64, sdc: u64, masked: u64) -> VulnTuple {
        VulnTuple::try_from_counts(crash, sdc, masked).expect("non-empty counts")
    }

    #[test]
    fn vuln_tuple_from_counts_normalises() {
        let t = counts(1, 1, 2);
        assert!((t.crash - 0.25).abs() < 1e-12);
        assert!((t.sdc - 0.25).abs() < 1e-12);
        assert!((t.masked - 0.5).abs() < 1e-12);
        assert!((t.failure() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn vuln_tuple_rejects_empty() {
        let err = VulnTuple::try_from_counts(0, 0, 0).expect_err("no observations");
        assert!(err.to_string().contains("at least one observation"));
    }

    #[test]
    fn abs_error_is_symmetric_l1() {
        let a = counts(1, 0, 1);
        let b = counts(0, 1, 1);
        assert!((a.abs_error(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.abs_error(&b), b.abs_error(&a));
        assert_eq!(a.abs_error(&a), 0.0);
    }

    #[test]
    fn bit_labels_take_modal_outcome() {
        let t = truth(vec![
            record(0, 0, Outcome::Masked),
            record(0, 0, Outcome::Masked),
            record(0, 0, Outcome::Sdc),
        ]);
        assert_eq!(
            t.bit_labels()[&BitSite {
                pc: 0,
                slot: OperandSlot::Use(0),
                bit: 0
            }],
            Outcome::Masked
        );
    }

    #[test]
    fn bit_labels_tie_break_by_severity() {
        let t = truth(vec![
            record(0, 0, Outcome::Masked),
            record(0, 0, Outcome::Sdc),
        ]);
        assert_eq!(
            t.bit_labels()[&BitSite {
                pc: 0,
                slot: OperandSlot::Use(0),
                bit: 0
            }],
            Outcome::Sdc
        );
        let t = truth(vec![
            record(0, 1, Outcome::Crash),
            record(0, 1, Outcome::Masked),
        ]);
        assert_eq!(
            t.bit_labels()[&BitSite {
                pc: 0,
                slot: OperandSlot::Use(0),
                bit: 1
            }],
            Outcome::Crash
        );
    }

    #[test]
    fn instruction_vulnerability_groups_by_pc() {
        let t = truth(vec![
            record(0, 0, Outcome::Masked),
            record(0, 1, Outcome::Crash),
            record(3, 0, Outcome::Sdc),
        ]);
        let iv = t.try_instruction_vulnerability().expect("non-empty");
        assert_eq!(iv.len(), 2);
        assert_eq!(iv[0].pc, 0);
        assert_eq!(iv[0].injections, 2);
        assert!((iv[0].tuple.crash - 0.5).abs() < 1e-12);
        assert_eq!(iv[1].pc, 3);
        assert!((iv[1].tuple.sdc - 1.0).abs() < 1e-12);
        assert_eq!(t.instructions_covered(), 2);
    }

    #[test]
    fn program_vulnerability_is_overall_fraction() {
        let t = truth(vec![
            record(0, 0, Outcome::Masked),
            record(1, 0, Outcome::Crash),
            record(2, 0, Outcome::Sdc),
            record(3, 0, Outcome::Sdc),
        ]);
        let pv = t.try_program_vulnerability().expect("non-empty");
        assert!((pv.crash - 0.25).abs() < 1e-12);
        assert!((pv.sdc - 0.5).abs() < 1e-12);
        assert!((pv.masked - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_truth_yields_typed_errors() {
        let t = truth(vec![]);
        assert!(matches!(
            t.try_program_vulnerability(),
            Err(TruthError::NoObservations { subject }) if subject == "t"
        ));
        assert_eq!(t.try_instruction_vulnerability().expect("empty is ok"), []);
        assert!(matches!(
            VulnTuple::try_from_counts(0, 0, 0),
            Err(TruthError::NoObservations { .. })
        ));
        let msg = t
            .try_program_vulnerability()
            .expect_err("empty")
            .to_string();
        assert!(msg.contains("at least one observation"), "{msg}");
    }

    #[test]
    fn residency_weighting_scales_severity_by_liveness() {
        let t = truth(vec![record(0, 0, Outcome::Crash)]);
        // No residency attached: typed error, not a panic.
        assert!(matches!(
            t.try_residency_weighted_vulnerability(),
            Err(TruthError::ResidencyUnavailable { subject }) if subject == "t"
        ));

        // The helper's golden run has one instruction; a value live for
        // half the run halves the pure-crash severity key (2.0 -> 1.0).
        let res = Residency::new(100, vec![PcResidency { sum: 50, count: 1 }]);
        let t = t.with_residency(res.clone()).expect("table covers program");
        assert_eq!(t.residency(), Some(&res));
        let weighted = t
            .try_residency_weighted_vulnerability()
            .expect("residency attached");
        assert_eq!(weighted.len(), 1);
        assert_eq!(weighted[0].0, 0);
        assert!((weighted[0].1 - 1.0).abs() < 1e-12, "{weighted:?}");
    }

    #[test]
    fn residency_with_no_definitions_scores_zero() {
        let t = truth(vec![record(0, 0, Outcome::Crash)]);
        let res = Residency::new(100, vec![PcResidency::default()]);
        let t = t.with_residency(res).expect("table covers program");
        let weighted = t
            .try_residency_weighted_vulnerability()
            .expect("residency attached");
        assert_eq!(weighted, vec![(0, 0.0)]);
        assert_eq!(PcResidency::default().mean(), None);
    }

    #[test]
    fn mismatched_residency_table_is_rejected() {
        let t = truth(vec![record(0, 0, Outcome::Sdc)]);
        let res = Residency::new(10, vec![PcResidency::default(); 3]);
        let err = t.with_residency(res).expect_err("wrong length");
        assert_eq!(
            err,
            TruthError::ResidencyMismatch {
                expected: 1,
                got: 3
            }
        );
        assert!(err.to_string().contains("covers 3 instructions"));
    }

    #[test]
    fn ranking_key_orders_by_severity() {
        let crashy = counts(9, 0, 1);
        let sdcy = counts(0, 9, 1);
        let masked = counts(0, 0, 1);
        assert!(crashy.ranking_key() > sdcy.ranking_key());
        assert!(sdcy.ranking_key() > masked.ranking_key());
    }
}
