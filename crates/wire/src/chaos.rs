//! Deterministic network-fault injection for any `Read + Write` stream.
//!
//! GLAIVE's ground truth *is* fault injection; this module turns the same
//! methodology on our own transport. [`ChaosTransport`] wraps a stream and
//! injects four fault classes — artificial delay, short (partial) reads
//! and writes, byte corruption, and hard disconnects — from a seeded
//! schedule, so the robustness of the serve and campaign fabrics can be
//! demonstrated (and *replayed*) rather than assumed.
//!
//! # Determinism model
//!
//! The schedule is **offset-hashed**: whether byte `i` of a direction's
//! stream is faulted, and how, is a pure function of
//! `(seed, stream_id, direction, i)` via a SplitMix64 finalizer. There is
//! no mutable RNG consumed per *operation*, because operation counts are
//! not deterministic — a poll loop retrying `WouldBlock` would burn
//! schedule state at a wall-clock-dependent rate, and TCP segmentation
//! would shift every subsequent draw. Byte offsets, by contrast, are
//! fixed by the protocol: the same request bytes occupy the same offsets
//! no matter how the kernel slices them. Two runs with the same
//! `GLAIVE_CHAOS_SEED` therefore corrupt the same bytes, cut the same
//! connections at the same offsets, and shorten the same operations.
//!
//! Short reads are enforced by *truncating the request before it reaches
//! the inner stream*, so the transport never consumes bytes past a
//! scheduled disconnect; the disconnect always fires exactly at its
//! offset regardless of how eagerly the caller reads.
//!
//! Delays sleep on the wall clock but never *decide* anything — removing
//! them changes timing, not the byte-level outcome.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The SplitMix64 generator (also the source of the stateless finalizer
/// used for offset hashing). Matches the mixing used for campaign chunk
/// sub-seeds, so the whole system draws from one PRNG family.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix(self.state)
    }
}

/// The SplitMix64 finalizer: a stateless avalanche hash of `z`.
fn mix(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reads chaos configuration from the environment.
///
/// `GLAIVE_CHAOS_SEED` (decimal or `0x`-prefixed hex u64) enables chaos;
/// unset or unparsable means disabled. `GLAIVE_CHAOS_RATE` is the
/// per-byte fault probability as a float in `[0, 1]` (default 0.0005);
/// `GLAIVE_CHAOS_DELAY_MS` caps a single injected delay (default 2 ms).
const ENV_SEED: &str = "GLAIVE_CHAOS_SEED";
const ENV_RATE: &str = "GLAIVE_CHAOS_RATE";
const ENV_DELAY: &str = "GLAIVE_CHAOS_DELAY_MS";

/// Bytes of lookahead when scanning for scheduled disconnects/short
/// boundaries; also the per-call I/O cap while chaos is active.
const SCAN_WINDOW: usize = 64 * 1024;

/// Domain-separation constants for the two directions of a stream.
const DIR_READ: u64 = 0x52454144; // "READ"
const DIR_WRITE: u64 = 0x57524954; // "WRIT"

/// Seeded fault-injection parameters. `Copy` so configs thread freely
/// through worker options and bench harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Master seed: the entire fault schedule is a pure function of this
    /// (plus each transport's `stream_id`).
    pub seed: u64,
    /// Per-byte fault probability in parts-per-million.
    pub fault_ppm: u32,
    /// Upper bound on a single injected delay, in milliseconds.
    pub max_delay_ms: u64,
}

impl ChaosConfig {
    /// A config with the given seed and default rate/delay.
    pub fn new(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            fault_ppm: 500,
            max_delay_ms: 2,
        }
    }

    /// The same config with `fault_ppm` replaced.
    #[must_use]
    pub fn with_fault_ppm(self, fault_ppm: u32) -> ChaosConfig {
        ChaosConfig { fault_ppm, ..self }
    }

    /// Parses [`ChaosConfig`] from `GLAIVE_CHAOS_SEED` /
    /// `GLAIVE_CHAOS_RATE` / `GLAIVE_CHAOS_DELAY_MS`.
    ///
    /// Returns `None` (chaos disabled) when the seed is unset or any
    /// set variable fails to parse — a misspelt value must not silently
    /// run with different chaos than the operator asked for.
    pub fn from_env() -> Option<ChaosConfig> {
        let seed_raw = std::env::var(ENV_SEED).ok()?;
        let seed_raw = seed_raw.trim();
        let seed = match seed_raw
            .strip_prefix("0x")
            .or_else(|| seed_raw.strip_prefix("0X"))
        {
            Some(hex) => u64::from_str_radix(hex, 16).ok()?,
            None => seed_raw.parse::<u64>().ok()?,
        };
        let mut cfg = ChaosConfig::new(seed);
        if let Ok(rate) = std::env::var(ENV_RATE) {
            let rate: f64 = rate.trim().parse().ok()?;
            if !(0.0..=1.0).contains(&rate) {
                return None;
            }
            cfg.fault_ppm = (rate * 1_000_000.0) as u32;
        }
        if let Ok(delay) = std::env::var(ENV_DELAY) {
            cfg.max_delay_ms = delay.trim().parse().ok()?;
        }
        Some(cfg)
    }
}

/// Tallies of injected faults, shared across every transport minted from
/// one [`ChaosPlan`] so a soak can report fleet-wide totals.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    delays: AtomicU64,
    short_ops: AtomicU64,
    corruptions: AtomicU64,
    disconnects: AtomicU64,
}

/// A point-in-time snapshot of [`ChaosCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosReport {
    /// Artificial delays injected.
    pub delays: u64,
    /// Reads/writes truncated short of the requested length.
    pub short_ops: u64,
    /// Bytes corrupted in flight.
    pub corruptions: u64,
    /// Hard disconnects injected.
    pub disconnects: u64,
}

impl ChaosReport {
    /// Total faults of all classes.
    pub fn total(&self) -> u64 {
        self.delays + self.short_ops + self.corruptions + self.disconnects
    }
}

/// A chaos campaign: one config plus shared fault counters. Mint a
/// [`ChaosTransport`] per connection with [`ChaosPlan::wrap`], giving
/// each a distinct `stream_id` so reconnections draw a fresh schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    config: ChaosConfig,
    counters: Arc<ChaosCounters>,
}

impl ChaosPlan {
    /// A plan with fresh counters.
    pub fn new(config: ChaosConfig) -> ChaosPlan {
        ChaosPlan {
            config,
            counters: Arc::new(ChaosCounters::default()),
        }
    }

    /// The plan's config.
    pub fn config(&self) -> ChaosConfig {
        self.config
    }

    /// Wraps `inner` in a [`ChaosTransport`] with the schedule derived
    /// from `(config.seed, stream_id)`.
    pub fn wrap<S>(&self, inner: S, stream_id: u64) -> ChaosTransport<S> {
        ChaosTransport {
            inner,
            fault_ppm: u64::from(self.config.fault_ppm),
            max_delay_ms: self.config.max_delay_ms.max(1),
            read_base: mix(mix(self.config.seed) ^ mix(stream_id) ^ DIR_READ),
            write_base: mix(mix(self.config.seed) ^ mix(stream_id) ^ DIR_WRITE),
            rpos: 0,
            wpos: 0,
            dead: false,
            counters: Arc::clone(&self.counters),
            scratch: Vec::new(),
        }
    }

    /// Snapshot of the fault tallies across all wrapped streams.
    pub fn report(&self) -> ChaosReport {
        ChaosReport {
            delays: self.counters.delays.load(Ordering::Relaxed),
            short_ops: self.counters.short_ops.load(Ordering::Relaxed),
            corruptions: self.counters.corruptions.load(Ordering::Relaxed),
            disconnects: self.counters.disconnects.load(Ordering::Relaxed),
        }
    }
}

/// What the schedule says happens to one byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Sleep before delivering this byte.
    Delay { ms: u64 },
    /// The operation spanning this offset is cut short at it.
    Short,
    /// Flip one bit of this byte.
    Corrupt { bit: u8 },
    /// The connection dies at this offset.
    Disconnect,
}

/// Pure fault lookup: the schedule for offset `i` under direction base
/// `base`. Independent of call pattern, segmentation, and wall clock.
fn fault_at(base: u64, fault_ppm: u64, max_delay_ms: u64, offset: u64) -> Option<Fault> {
    let h = mix(base ^ offset.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if h % 1_000_000 >= fault_ppm {
        return None;
    }
    let h2 = mix(h);
    Some(match h2 % 16 {
        0 => Fault::Disconnect,
        1..=5 => Fault::Corrupt {
            bit: ((h2 >> 8) % 8) as u8,
        },
        6..=10 => Fault::Short,
        _ => Fault::Delay {
            ms: 1 + (h2 >> 8) % max_delay_ms,
        },
    })
}

/// A fault-injecting wrapper around any `Read + Write` stream.
///
/// Each transport owns two byte-offset cursors (one per direction); every
/// byte that crosses it is checked against the offset-hashed schedule.
/// After an injected disconnect the transport is permanently dead — both
/// directions fail — mirroring a real TCP reset; recovery requires a new
/// connection (and a new `stream_id`, hence a fresh schedule).
#[derive(Debug)]
pub struct ChaosTransport<S> {
    inner: S,
    fault_ppm: u64,
    max_delay_ms: u64,
    read_base: u64,
    write_base: u64,
    rpos: u64,
    wpos: u64,
    dead: bool,
    counters: Arc<ChaosCounters>,
    scratch: Vec<u8>,
}

impl<S> ChaosTransport<S> {
    /// The wrapped stream, by reference.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Consumes the wrapper, returning the inner stream.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// True once an injected disconnect has killed this transport.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn fault(&self, base: u64, offset: u64) -> Option<Fault> {
        fault_at(base, self.fault_ppm, self.max_delay_ms, offset)
    }

    /// Plans one operation starting at `pos` for up to `want` bytes:
    /// returns the allowed length before the first Short/Disconnect
    /// boundary, whether a short fault truncated it, and whether a
    /// disconnect fires *at* `pos` (length 0).
    fn plan_op(&self, base: u64, pos: u64, want: usize) -> (usize, bool, bool) {
        let want = want.min(SCAN_WINDOW);
        let mut limit = want;
        let mut shortened = false;
        for k in 0..want as u64 {
            match self.fault(base, pos + k) {
                Some(Fault::Disconnect) => {
                    if k == 0 {
                        return (0, false, true);
                    }
                    limit = k as usize;
                    break;
                }
                Some(Fault::Short) => {
                    // A short fault at the very first byte still delivers
                    // that one byte (a zero-length read would read as EOF).
                    let cut = (k as usize).max(1);
                    if cut < limit {
                        limit = cut;
                        shortened = true;
                    }
                    break;
                }
                _ => {}
            }
        }
        (limit, shortened, false)
    }

    fn die(&mut self) -> io::Error {
        self.dead = true;
        self.counters.disconnects.fetch_add(1, Ordering::Relaxed);
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: injected disconnect")
    }
}

impl<S: Read> Read for ChaosTransport<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: transport disconnected",
            ));
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        let (limit, shortened, dies_now) = self.plan_op(self.read_base, self.rpos, buf.len());
        if dies_now {
            return Err(self.die());
        }
        // `WouldBlock`/`TimedOut` from the inner stream propagates
        // untouched and consumes no schedule state: polling is invisible
        // to the fault schedule.
        let n = self.inner.read(&mut buf[..limit])?;
        if n == 0 {
            return Ok(0); // real EOF passes through
        }
        if shortened && n == limit {
            self.counters.short_ops.fetch_add(1, Ordering::Relaxed);
        }
        for (k, byte) in buf[..n].iter_mut().enumerate() {
            match self.fault(self.read_base, self.rpos + k as u64) {
                Some(Fault::Corrupt { bit }) => {
                    *byte ^= 1 << bit;
                    self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
                }
                Some(Fault::Delay { ms }) => {
                    self.counters.delays.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                _ => {}
            }
        }
        self.rpos += n as u64;
        Ok(n)
    }
}

impl<S: Write> Write for ChaosTransport<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: transport disconnected",
            ));
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        let (limit, shortened, dies_now) = self.plan_op(self.write_base, self.wpos, buf.len());
        if dies_now {
            return Err(self.die());
        }
        // Corrupt into the scratch buffer *silently* — no counters, no
        // sleeps — so a `WouldBlock` from the inner stream propagates with
        // zero schedule state consumed: the retry re-corrupts the same
        // offsets to the same bytes (the flip is a pure function of the
        // offset) and only then tallies them.
        self.scratch.clear();
        self.scratch.extend_from_slice(&buf[..limit]);
        for k in 0..limit {
            if let Some(Fault::Corrupt { bit }) = self.fault(self.write_base, self.wpos + k as u64)
            {
                self.scratch[k] ^= 1 << bit;
            }
        }
        let n = self.inner.write(&self.scratch[..limit])?;
        if n == 0 {
            return Ok(0);
        }
        // Only bytes the inner stream actually accepted tally faults and
        // sleep their delays; a partial write leaves the rest for the
        // retry at the same offsets.
        for k in 0..n as u64 {
            match self.fault(self.write_base, self.wpos + k) {
                Some(Fault::Corrupt { .. }) => {
                    self.counters.corruptions.fetch_add(1, Ordering::Relaxed);
                }
                Some(Fault::Delay { ms }) => {
                    self.counters.delays.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                _ => {}
            }
        }
        if shortened && n == limit {
            self.counters.short_ops.fetch_add(1, Ordering::Relaxed);
        }
        self.wpos += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: crate::Timeouts> crate::Timeouts for ChaosTransport<S> {
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
        self.inner.set_timeouts(read, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// An in-memory duplex half: reads from a cursor, writes to a vec.
    struct Mem {
        rx: Cursor<Vec<u8>>,
        tx: Vec<u8>,
    }

    impl Read for Mem {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.rx.read(buf)
        }
    }

    impl Write for Mem {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.tx.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn drive(plan: &ChaosPlan, stream_id: u64, payload: &[u8], chunk: usize) -> (Vec<u8>, Vec<u8>) {
        let mem = Mem {
            rx: Cursor::new(payload.to_vec()),
            tx: Vec::new(),
        };
        let mut t = plan.wrap(mem, stream_id);
        let mut seen = Vec::new();
        let mut buf = vec![0u8; chunk];
        loop {
            match t.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => seen.extend_from_slice(&buf[..n]),
                Err(_) => break, // injected disconnect
            }
        }
        let mut written = 0;
        while written < payload.len() {
            match t.write(&payload[written..]) {
                Ok(0) => break,
                Ok(n) => written += n,
                Err(_) => break,
            }
        }
        let tx = t.into_inner().tx;
        (seen, tx)
    }

    #[test]
    fn schedule_is_independent_of_segmentation() {
        let plan = ChaosPlan::new(ChaosConfig::new(7).with_fault_ppm(30_000));
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31) as u8).collect();
        // Same seed + stream id, wildly different read granularity: the
        // delivered (faulted) byte stream must be identical.
        let (a_read, a_write) = drive(&plan, 1, &payload, 1);
        let (b_read, b_write) = drive(&plan, 1, &payload, 4096);
        let (c_read, c_write) = drive(&plan, 1, &payload, 7);
        assert_eq!(a_read, b_read);
        assert_eq!(a_read, c_read);
        assert_eq!(a_write, b_write);
        assert_eq!(a_write, c_write);
        assert!(plan.report().total() > 0, "aggressive chaos fired");
    }

    #[test]
    fn distinct_stream_ids_draw_distinct_schedules() {
        let plan = ChaosPlan::new(ChaosConfig::new(7).with_fault_ppm(30_000));
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31) as u8).collect();
        let (a, _) = drive(&plan, 1, &payload, 64);
        let (b, _) = drive(&plan, 2, &payload, 64);
        assert_ne!(a, b, "new stream id must reshuffle the schedule");
    }

    #[test]
    fn zero_rate_is_fully_transparent() {
        let plan = ChaosPlan::new(ChaosConfig::new(99).with_fault_ppm(0));
        let payload: Vec<u8> = (0..2048u32).map(|i| (i * 131) as u8).collect();
        let (seen, tx) = drive(&plan, 5, &payload, 100);
        assert_eq!(seen, payload);
        assert_eq!(tx, payload);
        assert_eq!(plan.report(), ChaosReport::default());
    }

    #[test]
    fn disconnect_kills_both_directions_permanently() {
        // Hunt for a (seed, stream) pair whose read schedule disconnects
        // early, then verify the transport stays dead.
        let cfg = ChaosConfig {
            seed: 3,
            fault_ppm: 200_000,
            max_delay_ms: 1,
        };
        let plan = ChaosPlan::new(cfg);
        let payload = vec![0xAAu8; 65536];
        for stream_id in 0..64u64 {
            let mem = Mem {
                rx: Cursor::new(payload.clone()),
                tx: Vec::new(),
            };
            let mut t = plan.wrap(mem, stream_id);
            let mut buf = [0u8; 512];
            let mut disconnected = false;
            loop {
                match t.read(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) => {
                        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                        disconnected = true;
                        break;
                    }
                }
            }
            if disconnected {
                assert!(t.is_dead());
                assert!(t.read(&mut buf).is_err(), "reads stay dead");
                assert!(t.write(&[1, 2, 3]).is_err(), "writes stay dead");
                return;
            }
        }
        panic!("at 20% fault rate, some stream of 64 must disconnect");
    }

    /// Returns `WouldBlock` before every other operation in each
    /// direction — a non-blocking socket whose readiness flaps constantly.
    struct Flaky {
        inner: Mem,
        read_ready: bool,
        write_ready: bool,
    }

    impl Read for Flaky {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.read_ready {
                self.read_ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
            }
            self.read_ready = false;
            self.inner.read(buf)
        }
    }

    impl Write for Flaky {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if !self.write_ready {
                self.write_ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "not yet"));
            }
            self.write_ready = false;
            self.inner.write(buf)
        }
        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    #[test]
    fn wouldblock_consumes_no_schedule_state() {
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31) as u8).collect();
        let cfg = ChaosConfig::new(7).with_fault_ppm(30_000);

        let smooth = ChaosPlan::new(cfg);
        let (want_read, want_write) = drive(&smooth, 1, &payload, 64);
        let want_report = smooth.report();
        assert!(want_report.total() > 0, "chaos must fire for a real test");

        // The same schedule through a stream that WouldBlocks before
        // every single operation: each retry must neither burn schedule
        // entries nor double-count faults.
        let flaky_plan = ChaosPlan::new(cfg);
        let mut t = flaky_plan.wrap(
            Flaky {
                inner: Mem {
                    rx: Cursor::new(payload.clone()),
                    tx: Vec::new(),
                },
                read_ready: false,
                write_ready: false,
            },
            1,
        );
        let mut seen = Vec::new();
        let mut buf = [0u8; 64];
        loop {
            match t.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => seen.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(_) => break, // injected disconnect
            }
        }
        let mut written = 0;
        while written < payload.len() {
            match t.write(&payload[written..]) {
                Ok(0) => break,
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(_) => break,
            }
        }
        let tx = t.into_inner().inner.tx;
        assert_eq!(seen, want_read, "read bytes identical under WouldBlock");
        assert_eq!(tx, want_write, "written bytes identical under WouldBlock");
        assert_eq!(
            flaky_plan.report(),
            want_report,
            "polling retries must not inflate any fault counter"
        );
    }

    #[test]
    fn env_parsing_accepts_decimal_and_hex_and_rejects_garbage() {
        // Exercise the parser core without mutating process env (other
        // tests run concurrently): from_env is a thin wrapper over these.
        assert_eq!("42".trim().parse::<u64>().ok(), Some(42));
        let cfg = ChaosConfig::new(0xdead_beef).with_fault_ppm(250_000);
        assert_eq!(cfg.fault_ppm, 250_000);
        assert_eq!(ChaosConfig::new(1).fault_ppm, 500);
    }
}
