//! The shared wire codec for GLAIVE services: length-prefixed, checksummed
//! binary frames in the little-endian magic/version discipline used by the
//! `GLVFIT01` ground-truth and `GLVCKPT1` checkpoint artifacts.
//!
//! Two protocols ride on this codec — `GLVSRV02` (the model server,
//! `glaive-serve`) and `GLVCMP01` (the distributed campaign fabric,
//! `glaive-campaign`). Each protocol owns its magic, opcodes and body
//! layouts; this crate owns the framing that both must get right exactly
//! once:
//!
//! On the wire every frame is a `u32` payload length followed by the
//! payload. A payload is
//!
//! ```text
//! magic (8) | opcode (1) | body (…) | FNV-1a over all prior bytes (8)
//! ```
//!
//! The trailing checksum covers the magic, opcode and body, so *any*
//! single-byte corruption is rejected: each FNV-1a step is a bijection of
//! the hash state, hence a changed byte always changes the final digest.
//! Decoders never panic on foreign bytes — every malformed frame maps to a
//! typed [`ProtocolError`].
//!
//! Encoding is a sealed pipeline: a [`FrameBuilder`] accumulates the body
//! and [`FrameBuilder::seal`] produces the only value [`write_frame`]
//! accepts — a checksummed [`Frame`]. There is no API for putting an
//! unchecksummed payload on the wire.
//!
//! Multi-byte integers are little-endian throughout; strings are
//! length-prefixed UTF-8; floating-point values travel as bit patterns, so
//! a decoded value is bit-identical to the encoded one.
//!
//! Transport comes in two shapes. [`FrameReader`] and [`FrameWriter`] are
//! the readiness-driven core: incremental state machines that own reusable
//! buffers, tolerate `WouldBlock` mid-frame, and move sealed payloads
//! without intermediate copies — what an event-loop server polls. The
//! blocking [`read_frame`]/[`write_frame`] and the cancellable variants
//! are thin adapters over the same state machines for callers that own a
//! thread per stream.

use std::collections::VecDeque;
use std::fmt;
use std::io::{IoSlice, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

pub mod backoff;
pub mod chaos;

pub use backoff::{sleep_cancellable, Backoff, RetryPolicy, Wait};
pub use chaos::{ChaosConfig, ChaosPlan, ChaosReport, ChaosTransport, SplitMix64};

/// Configures read/write deadlines on a transport, abstracting over
/// `TcpStream` and wrappers like [`ChaosTransport`] so every GLAIVE
/// socket — server handler, coordinator connection, worker, client —
/// can be given explicit deadlines regardless of how it is stacked.
///
/// `None` clears a deadline (blocking I/O); `Some(d)` makes reads/writes
/// fail with `WouldBlock`/`TimedOut` after `d` without progress, which
/// the cancellable frame reader turns into cancel checks and stall
/// detection.
pub trait Timeouts {
    /// Sets the read and write deadlines.
    ///
    /// # Errors
    ///
    /// Propagates the transport's failure to apply a deadline (e.g. a
    /// zero `Duration` on a socket).
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> std::io::Result<()>;
}

impl Timeouts for TcpStream {
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

/// Upper bound on a frame payload; larger declared lengths are rejected
/// before any allocation (a corrupted or hostile length prefix must not
/// OOM the receiver).
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Typed decode/transport failure. Every malformed input maps here — the
/// protocol layer never panics on wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload does not start with the expected magic/version.
    BadMagic,
    /// The payload ended before its declared content.
    Truncated,
    /// The trailing FNV-1a digest disagrees with the payload bytes.
    Checksum,
    /// The opcode byte names no known frame kind.
    UnknownOpcode(u8),
    /// A structural invariant failed (bad tag, absurd length, undecodable
    /// instruction, non-UTF-8 string…).
    Corrupt(&'static str),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The underlying stream failed mid-frame.
    Io(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic => write!(f, "not a recognised frame (bad magic)"),
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::Checksum => write!(f, "frame checksum mismatch"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            ProtocolError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds the cap"),
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        ProtocolError::Io(e.to_string())
    }
}

/// 64-bit FNV-1a digest of `bytes` — the frame checksum, and the hash
/// family the artifact cache uses for content addressing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sealed frame payload: protocol magic, body, and the trailing FNV-1a
/// digest over both.
///
/// The only way to obtain a `Frame` is [`FrameBuilder::seal`], and
/// [`write_frame`] accepts nothing else — so every frame a GLAIVE service
/// puts on the wire is checksummed *by construction*. (Hostile-input tests
/// that need malformed bytes must hand-roll the length prefix themselves;
/// production code cannot.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame(Vec<u8>);

impl Frame {
    /// The sealed payload bytes (magic + body + digest), without the
    /// stream-level length prefix.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the frame, returning the sealed payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

/// Incremental encoder for one frame: starts from the protocol magic,
/// accumulates body fields in the little-endian wire discipline, and
/// [`seal`](FrameBuilder::seal)s into a [`Frame`] by appending the FNV-1a
/// digest of everything written.
///
/// ```
/// use glaive_wire::{open, FrameBuilder};
///
/// let mut b = FrameBuilder::new(b"GLVDOC01");
/// b.u8(0x01).u32(7).str("hi");
/// let frame = b.seal();
/// let mut r = open(frame.bytes(), b"GLVDOC01")?;
/// assert_eq!(r.u8()?, 0x01);
/// # Ok::<(), glaive_wire::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    buf: Vec<u8>,
}

impl FrameBuilder {
    /// Starts a frame for the protocol identified by `magic`.
    pub fn new(magic: &[u8; 8]) -> FrameBuilder {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(magic);
        FrameBuilder { buf }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut FrameBuilder {
        self.buf.push(v);
        self
    }

    /// Appends a `u32` in little-endian order.
    pub fn u32(&mut self, v: u32) -> &mut FrameBuilder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64` in little-endian order.
    pub fn u64(&mut self, v: u64) -> &mut FrameBuilder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f32` as its little-endian bit pattern.
    pub fn f32(&mut self, v: f32) -> &mut FrameBuilder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut FrameBuilder {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends raw bytes verbatim (e.g. an encoded instruction).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut FrameBuilder {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Seals the frame: appends the FNV-1a digest of everything written so
    /// far (magic included) and freezes the bytes.
    pub fn seal(self) -> Frame {
        let mut payload = self.buf;
        let digest = fnv1a(&payload);
        payload.extend_from_slice(&digest.to_le_bytes());
        Frame(payload)
    }
}

/// Validates magic and checksum, returning a reader over the body (opcode
/// onwards).
///
/// # Errors
///
/// [`ProtocolError::Truncated`] when the payload cannot even hold magic +
/// digest, [`ProtocolError::BadMagic`] on a foreign or version-mismatched
/// prefix, [`ProtocolError::Checksum`] when the trailing digest disagrees
/// with the payload bytes.
pub fn open<'a>(payload: &'a [u8], magic: &[u8; 8]) -> Result<Reader<'a>, ProtocolError> {
    if payload.len() < magic.len() + 8 {
        return Err(ProtocolError::Truncated);
    }
    if &payload[..magic.len()] != magic {
        return Err(ProtocolError::BadMagic);
    }
    let (head, tail) = payload.split_at(payload.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("split at len - 8"));
    if fnv1a(head) != declared {
        return Err(ProtocolError::Checksum);
    }
    Ok(Reader {
        buf: &head[magic.len()..],
        pos: 0,
    })
}

/// A bounds-checked cursor over a sealed payload's body. Every accessor
/// returns [`ProtocolError::Truncated`] instead of reading past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] at end of body.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than 4 bytes remain.
    pub fn f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// A `u32` element count whose `count × element_size` must still fit in
    /// the remaining bytes — rejects absurd counts before any allocation.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when the declared count cannot fit.
    pub fn counted(&mut self, element_size: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.checked_mul(element_size)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string of at most `cap` bytes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Corrupt`] for over-cap or non-UTF-8 strings,
    /// [`ProtocolError::Truncated`] when the body ends early.
    pub fn string(&mut self, cap: usize) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(ProtocolError::Corrupt("string exceeds cap"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Corrupt("non-UTF-8 string"))
    }

    /// Rejects trailing garbage after a fully decoded body.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Corrupt`] when undecoded bytes remain.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Corrupt("trailing bytes after body"));
        }
        Ok(())
    }
}

/// Writes one length-prefixed frame. Only sealed [`Frame`]s are accepted,
/// so a caller cannot put an unchecksummed payload on the wire.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let payload = frame.bytes();
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Progress of one [`FrameReader::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePoll {
    /// A complete frame payload is buffered: read it with
    /// [`FrameReader::frame`], then release it with
    /// [`FrameReader::consume`].
    Ready,
    /// The stream has no bytes to give right now (`WouldBlock` or a read
    /// timeout). Progress so far is kept; poll again when readable.
    Pending,
    /// Clean EOF at a frame boundary — the peer hung up between frames.
    Closed,
}

/// Incremental, readiness-driven frame decoder.
///
/// Owns one reusable buffer and decodes exactly one frame at a time:
/// 4-byte length prefix, then exactly that many payload bytes — never a
/// byte more, so unread bytes of a *following* frame stay in the stream
/// and the reader can be dropped or replaced between frames without
/// losing data. `WouldBlock` mid-frame is not an error: [`poll`] returns
/// [`FramePoll::Pending`] and the partial frame survives until the stream
/// is readable again, which is what lets a single event-loop thread
/// multiplex hundreds of connections.
///
/// The buffer is retained across [`consume`] calls, so a long-lived
/// connection reading many frames allocates only when a frame exceeds
/// every previous one.
///
/// [`poll`]: FrameReader::poll
/// [`consume`]: FrameReader::consume
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    filled: usize,
    /// Payload length, once the 4-byte prefix is complete and validated.
    need: Option<usize>,
}

impl FrameReader {
    /// An empty reader at a frame boundary.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Header + payload bytes the current frame occupies, as far as known.
    fn target(&self) -> usize {
        4 + self.need.unwrap_or(0)
    }

    /// Bytes of the in-progress frame buffered so far (prefix included).
    pub fn buffered(&self) -> usize {
        self.filled
    }

    /// Whether a frame has started arriving but is not yet complete — the
    /// state a stall deadline should police. A completed-but-unconsumed
    /// frame and an idle boundary are both *not* mid-frame.
    pub fn mid_frame(&self) -> bool {
        self.filled > 0 && (self.need.is_none() || self.filled < self.target())
    }

    /// Advances the decode as far as the stream allows right now.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::FrameTooLarge`] for an oversized length prefix
    /// (rejected before any allocation), [`ProtocolError::Io`] for
    /// transport failures, including EOF mid-frame.
    pub fn poll<R: Read>(&mut self, stream: &mut R) -> Result<FramePoll, ProtocolError> {
        use std::io::ErrorKind;

        loop {
            if self.need.is_none() && self.filled >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("len 4"));
                if len > MAX_FRAME_LEN {
                    return Err(ProtocolError::FrameTooLarge(len));
                }
                self.need = Some(len as usize);
            }
            let target = self.target();
            if self.need.is_some() && self.filled >= target {
                return Ok(FramePoll::Ready);
            }
            if self.buf.len() < target {
                self.buf.resize(target, 0);
            }
            match stream.read(&mut self.buf[self.filled..target]) {
                Ok(0) => {
                    return if self.filled == 0 {
                        Ok(FramePoll::Closed)
                    } else {
                        Err(ProtocolError::Io("connection reset".into()))
                    };
                }
                Ok(n) => self.filled += n,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(FramePoll::Pending)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ProtocolError::Io(e.to_string())),
            }
        }
    }

    /// The completed frame's payload (without the length prefix). Only
    /// meaningful after [`FrameReader::poll`] returned
    /// [`FramePoll::Ready`]; empty otherwise.
    pub fn frame(&self) -> &[u8] {
        match self.need {
            Some(n) if self.filled >= 4 + n => &self.buf[4..4 + n],
            _ => &[],
        }
    }

    /// Releases the completed frame, returning the reader to the frame
    /// boundary. The buffer's capacity is kept for the next frame.
    pub fn consume(&mut self) {
        self.filled = 0;
        self.need = None;
    }
}

/// Incremental, readiness-driven frame encoder.
///
/// [`enqueue`](FrameWriter::enqueue) takes ownership of a sealed
/// [`Frame`]'s buffer — no copy — and
/// [`poll_write`](FrameWriter::poll_write) drains the queue as far as the
/// stream accepts, tolerating `WouldBlock` and short writes at any byte
/// position. The 4-byte length prefix is synthesised on the fly from the
/// payload length, so the sealed bytes go on the wire exactly as built.
#[derive(Debug, Default)]
pub struct FrameWriter {
    queue: VecDeque<Vec<u8>>,
    /// Bytes of the front entry already written, counting its 4-byte
    /// length prefix first.
    sent: usize,
}

impl FrameWriter {
    /// An empty writer.
    pub fn new() -> FrameWriter {
        FrameWriter::default()
    }

    /// Queues a sealed frame for transmission, taking ownership of its
    /// bytes without copying them.
    pub fn enqueue(&mut self, frame: Frame) {
        self.queue.push_back(frame.into_bytes());
    }

    /// Whether everything enqueued has been handed to the stream.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes still to be written (length prefixes included).
    pub fn pending_bytes(&self) -> usize {
        let queued: usize = self.queue.iter().map(|p| p.len() + 4).sum();
        queued - self.sent
    }

    /// Writes as much of the queue as the stream accepts right now.
    /// Returns `Ok(true)` when the queue fully drained, `Ok(false)` when
    /// the stream stopped accepting bytes (`WouldBlock`/timeout) with data
    /// still pending.
    ///
    /// # Errors
    ///
    /// Transport failures other than readiness; a `write` returning zero
    /// surfaces as [`std::io::ErrorKind::WriteZero`].
    pub fn poll_write<W: Write>(&mut self, stream: &mut W) -> std::io::Result<bool> {
        use std::io::ErrorKind;

        while let Some(payload) = self.queue.front() {
            let header = (payload.len() as u32).to_le_bytes();
            let wrote = if self.sent < 4 {
                stream.write_vectored(&[IoSlice::new(&header[self.sent..]), IoSlice::new(payload)])
            } else {
                stream.write(&payload[self.sent - 4..])
            };
            match wrote {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "stream accepted zero bytes of a pending frame",
                    ))
                }
                Ok(n) => {
                    self.sent += n;
                    if self.sent == payload.len() + 4 {
                        self.queue.pop_front();
                        self.sent = 0;
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Ok(false)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        stream.flush()?;
        Ok(true)
    }
}

/// Reads one length-prefixed frame payload (blocking). A thin adapter
/// over [`FrameReader`]: because the reader never consumes bytes beyond
/// the current frame, per-call use composes with any following traffic.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] for absurd length prefixes,
/// [`ProtocolError::Io`] for transport failures (including EOF and read
/// timeouts mid-frame).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut fr = FrameReader::new();
    match fr.poll(r)? {
        FramePoll::Ready => Ok(fr.frame().to_vec()),
        FramePoll::Closed => Err(ProtocolError::Io("connection closed".into())),
        FramePoll::Pending => Err(ProtocolError::Io("read timed out".into())),
    }
}

/// Result of a cancellable frame read.
pub enum ReadOutcome {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary — the peer hung up.
    Closed,
    /// The cancellation flag was raised during a read timeout.
    Cancelled,
    /// The stream failed or delivered an oversized prefix.
    Failed(ProtocolError),
}

/// Reads one length-prefixed frame from a stream configured with a read
/// timeout, re-checking `cancel` on every timeout so a draining service
/// never strands a handler in a blocking read.
///
/// `stall` is the mid-frame progress deadline: once any byte of a frame
/// has arrived, the peer must keep delivering — more than `stall` with
/// zero progress fails the read with a typed `Io` error, so a peer that
/// dies (or is chaos-frozen) halfway through a frame can never wedge the
/// handler thread forever. An *idle* connection at a frame boundary is
/// not a stall: waiting for the next request indefinitely is normal.
/// `None` preserves the old unbounded behaviour.
///
/// The framing is inlined (instead of calling [`read_frame`]) so the
/// timeout granularity sits below the frame level: a half-received frame
/// keeps its progress across cancel checks instead of corrupting the
/// stream position.
pub fn read_frame_cancellable<R: Read>(
    stream: &mut R,
    cancel: &std::sync::atomic::AtomicBool,
    stall: Option<Duration>,
) -> ReadOutcome {
    read_frame_bounded(stream, cancel, stall, true)
}

/// Like [`read_frame_cancellable`], but for strict request/response
/// clients awaiting a reply just solicited: the no-progress `deadline`
/// also covers the wait at the frame boundary. A peer that goes silent
/// after accepting a request is indistinguishable from a dead one, so
/// the idle exemption does not apply.
pub fn read_reply_cancellable<R: Read>(
    stream: &mut R,
    cancel: &std::sync::atomic::AtomicBool,
    deadline: Duration,
) -> ReadOutcome {
    read_frame_bounded(stream, cancel, Some(deadline), false)
}

fn read_frame_bounded<R: Read>(
    stream: &mut R,
    cancel: &std::sync::atomic::AtomicBool,
    stall: Option<Duration>,
    idle_exempt: bool,
) -> ReadOutcome {
    use std::sync::atomic::Ordering;

    let mut fr = FrameReader::new();
    let mut last_progress = Instant::now();
    let mut last_filled = 0;
    loop {
        match fr.poll(stream) {
            Ok(FramePoll::Ready) => return ReadOutcome::Frame(fr.frame().to_vec()),
            Ok(FramePoll::Closed) => return ReadOutcome::Closed,
            Ok(FramePoll::Pending) => {
                // The stream's read timeout elapsed (or it is non-blocking):
                // the cadence at which cancellation and stall are policed.
                if cancel.load(Ordering::Relaxed) {
                    return ReadOutcome::Cancelled;
                }
                if fr.buffered() != last_filled {
                    last_filled = fr.buffered();
                    last_progress = Instant::now();
                }
                let stalled_wait = !(idle_exempt && fr.buffered() == 0);
                if let Some(limit) = stall {
                    if stalled_wait && last_progress.elapsed() > limit {
                        return ReadOutcome::Failed(ProtocolError::Io(format!(
                            "peer stalled mid-frame for over {limit:?}"
                        )));
                    }
                }
            }
            Err(e) => return ReadOutcome::Failed(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"GLVTST01";

    fn sample_frame() -> Frame {
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(0x07).u32(0xdead_beef).u64(42).f32(1.5).str("hello");
        b.seal()
    }

    #[test]
    fn seal_open_roundtrips() {
        let frame = sample_frame();
        let mut r = open(frame.bytes(), MAGIC).expect("opens");
        assert_eq!(r.u8().expect("opcode"), 0x07);
        assert_eq!(r.u32().expect("u32"), 0xdead_beef);
        assert_eq!(r.u64().expect("u64"), 42);
        assert_eq!(r.f32().expect("f32").to_bits(), 1.5f32.to_bits());
        assert_eq!(r.string(16).expect("str"), "hello");
        r.finish().expect("no trailing bytes");
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let frame = sample_frame().into_bytes();
        for pos in 0..frame.len() {
            for mask in [0x01u8, 0xff] {
                let mut bad = frame.clone();
                bad[pos] ^= mask;
                let outcome = open(&bad, MAGIC).map(|mut r| {
                    // A flip inside the body keeps magic+checksum...
                    // impossible: the checksum covers every payload byte.
                    let _ = r.u8();
                });
                assert!(outcome.is_err(), "flip {mask:#04x} at {pos} must fail");
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frame = sample_frame();
        let bytes = frame.bytes();
        for cut in 0..bytes.len() {
            assert!(open(&bytes[..cut], MAGIC).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn foreign_magic_is_rejected() {
        // A validly sealed frame of a *different* protocol: checksum fine,
        // magic wrong.
        let mut b = FrameBuilder::new(b"GLVOTHER");
        b.u8(0x07);
        let frame = b.seal();
        assert_eq!(
            open(frame.bytes(), MAGIC).err(),
            Some(ProtocolError::BadMagic)
        );
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(0x01).u8(0xaa); // 0xaa: undecoded trailing byte
        let frame = b.seal();
        let mut r = open(frame.bytes(), MAGIC).expect("opens");
        assert_eq!(r.u8().expect("opcode"), 0x01);
        assert_eq!(
            r.finish(),
            Err(ProtocolError::Corrupt("trailing bytes after body"))
        );
    }

    #[test]
    fn counted_rejects_absurd_counts_before_allocation() {
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(0x01).u32(u32::MAX); // declares 4 billion elements
        let frame = b.seal();
        let mut r = open(frame.bytes(), MAGIC).expect("opens");
        let _ = r.u8().expect("opcode");
        assert_eq!(r.counted(8), Err(ProtocolError::Truncated));
    }

    #[test]
    fn cancellable_read_yields_frames_then_closed_then_cancel() {
        use std::sync::atomic::AtomicBool;

        let frame = sample_frame();
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("write");
        let cancel = AtomicBool::new(false);
        let mut cursor = &wire[..];
        match read_frame_cancellable(&mut cursor, &cancel, None) {
            ReadOutcome::Frame(p) => assert_eq!(p, frame.bytes()),
            _ => panic!("expected a frame"),
        }
        assert!(matches!(
            read_frame_cancellable(&mut cursor, &cancel, None),
            ReadOutcome::Closed
        ));

        struct Stalled;
        impl Read for Stalled {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall"))
            }
        }
        let cancel = AtomicBool::new(true);
        assert!(matches!(
            read_frame_cancellable(&mut Stalled, &cancel, None),
            ReadOutcome::Cancelled
        ));
    }

    #[test]
    fn mid_frame_stall_fails_but_idle_boundary_does_not() {
        use std::sync::atomic::AtomicBool;

        /// Delivers `head` bytes, then times out forever: a peer frozen
        /// mid-frame.
        struct Frozen {
            head: Vec<u8>,
            pos: usize,
        }
        impl Read for Frozen {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos < self.head.len() {
                    let n = buf.len().min(self.head.len() - self.pos);
                    buf[..n].copy_from_slice(&self.head[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                    Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "idle"))
                }
            }
        }

        let cancel = AtomicBool::new(false);
        let stall = Some(Duration::from_millis(50));

        // A length prefix promising 100 bytes that never arrive: stall
        // fires with a typed Io error instead of hanging forever.
        let mut frozen = Frozen {
            head: 100u32.to_le_bytes().to_vec(),
            pos: 0,
        };
        let start = Instant::now();
        match read_frame_cancellable(&mut frozen, &cancel, stall) {
            ReadOutcome::Failed(ProtocolError::Io(msg)) => {
                assert!(msg.contains("stalled"), "got: {msg}")
            }
            _ => panic!("expected a stall failure"),
        }
        assert!(start.elapsed() < Duration::from_secs(10));

        // An idle connection at the frame boundary is NOT a stall: the
        // reader keeps waiting (here until cancel is raised).
        let idle_cancel = AtomicBool::new(false);
        let mut idle = Frozen {
            head: Vec::new(),
            pos: 0,
        };
        let start = Instant::now();
        let waiter = std::thread::scope(|s| {
            let handle = s.spawn(|| read_frame_cancellable(&mut idle, &idle_cancel, stall));
            std::thread::sleep(Duration::from_millis(200));
            idle_cancel.store(true, std::sync::atomic::Ordering::Relaxed);
            handle.join().expect("reader thread")
        });
        assert!(
            matches!(waiter, ReadOutcome::Cancelled),
            "idle boundary waits until cancelled, not until stall"
        );
        assert!(start.elapsed() >= Duration::from_millis(150));
    }

    /// Delivers an underlying byte script one byte at a time, returning
    /// `WouldBlock` between every delivered byte — the worst-case
    /// segmentation a readiness-driven reader must survive.
    struct Trickle {
        bytes: Vec<u8>,
        pos: usize,
        ready: bool,
    }
    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "later"));
            }
            self.ready = false;
            if self.pos == self.bytes.len() {
                return Ok(0);
            }
            buf[0] = self.bytes[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_byte_level_wouldblock_segmentation() {
        let frames = [sample_frame(), sample_frame()];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write");
        }
        let mut stream = Trickle {
            bytes: wire,
            pos: 0,
            ready: false,
        };
        let mut fr = FrameReader::new();
        let mut got = Vec::new();
        let mut pendings = 0u32;
        loop {
            match fr.poll(&mut stream).expect("no transport error") {
                FramePoll::Ready => {
                    got.push(fr.frame().to_vec());
                    fr.consume();
                    assert!(!fr.mid_frame(), "consume returns to the boundary");
                }
                FramePoll::Pending => pendings += 1,
                FramePoll::Closed => break,
            }
        }
        assert_eq!(got.len(), 2);
        for (g, f) in got.iter().zip(&frames) {
            assert_eq!(g, f.bytes(), "bit-identical through segmentation");
        }
        assert!(
            pendings as usize >= got[0].len(),
            "every byte cost at least one WouldBlock"
        );
    }

    #[test]
    fn frame_reader_reports_mid_frame_and_fails_on_mid_frame_eof() {
        // Two bytes of a length prefix delivered, then WouldBlock:
        // mid-frame with progress kept. EOF afterwards is a connection
        // reset (never a clean close).
        let mut stream = Trickle {
            bytes: vec![0x05, 0x00],
            pos: 0,
            ready: true,
        };
        let mut fr = FrameReader::new();
        assert!(!fr.mid_frame(), "fresh reader sits at the boundary");
        loop {
            match fr.poll(&mut stream) {
                Ok(FramePoll::Pending) if stream.pos < stream.bytes.len() => continue,
                Ok(FramePoll::Pending) => break,
                other => panic!("expected Pending while bytes remain, got {other:?}"),
            }
        }
        assert!(fr.mid_frame());
        assert_eq!(fr.buffered(), 2);
        let mut eof: &[u8] = &[];
        assert!(matches!(fr.poll(&mut eof), Err(ProtocolError::Io(_))));
    }

    #[test]
    fn frame_reader_rejects_oversized_prefix_before_allocating() {
        let mut fr = FrameReader::new();
        let mut cursor: &[u8] = &u32::MAX.to_le_bytes();
        assert_eq!(
            fr.poll(&mut cursor),
            Err(ProtocolError::FrameTooLarge(u32::MAX))
        );
    }

    /// Accepts at most 3 bytes per call and interleaves `WouldBlock`s —
    /// a congested non-blocking socket.
    struct Choked {
        out: Vec<u8>,
        ready: bool,
    }
    impl Write for Choked {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "full"));
            }
            self.ready = false;
            let n = buf.len().min(3);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frame_writer_drains_across_short_writes_and_wouldblock() {
        let frames = [sample_frame(), sample_frame()];
        let mut reference = Vec::new();
        for f in &frames {
            write_frame(&mut reference, f).expect("write");
        }

        let mut fw = FrameWriter::new();
        assert!(fw.is_idle());
        for f in &frames {
            fw.enqueue(f.clone());
        }
        assert_eq!(fw.pending_bytes(), reference.len());
        let mut sink = Choked {
            out: Vec::new(),
            ready: false,
        };
        let mut stalls = 0u32;
        while !fw.poll_write(&mut sink).expect("no transport error") {
            stalls += 1;
        }
        assert!(fw.is_idle());
        assert_eq!(fw.pending_bytes(), 0);
        assert_eq!(sink.out, reference, "bit-identical to the blocking path");
        assert!(stalls > 0, "the sink did exercise WouldBlock");
    }

    #[test]
    fn stream_framing_roundtrips_and_caps_length() {
        let frames = [sample_frame(), sample_frame()];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write");
        }
        let mut cursor = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).expect("read"), f.bytes());
        }
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Io(_))));

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        oversized.extend_from_slice(&[0; 16]);
        assert_eq!(
            read_frame(&mut &oversized[..]),
            Err(ProtocolError::FrameTooLarge(u32::MAX))
        );
    }
}
