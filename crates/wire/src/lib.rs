//! The shared wire codec for GLAIVE services: length-prefixed, checksummed
//! binary frames in the little-endian magic/version discipline used by the
//! `GLVFIT01` ground-truth and `GLVCKPT1` checkpoint artifacts.
//!
//! Two protocols ride on this codec — `GLVSRV01` (the model server,
//! `glaive-serve`) and `GLVCMP01` (the distributed campaign fabric,
//! `glaive-campaign`). Each protocol owns its magic, opcodes and body
//! layouts; this crate owns the framing that both must get right exactly
//! once:
//!
//! On the wire every frame is a `u32` payload length followed by the
//! payload. A payload is
//!
//! ```text
//! magic (8) | opcode (1) | body (…) | FNV-1a over all prior bytes (8)
//! ```
//!
//! The trailing checksum covers the magic, opcode and body, so *any*
//! single-byte corruption is rejected: each FNV-1a step is a bijection of
//! the hash state, hence a changed byte always changes the final digest.
//! Decoders never panic on foreign bytes — every malformed frame maps to a
//! typed [`ProtocolError`].
//!
//! Encoding is a sealed pipeline: a [`FrameBuilder`] accumulates the body
//! and [`FrameBuilder::seal`] produces the only value [`write_frame`]
//! accepts — a checksummed [`Frame`]. There is no API for putting an
//! unchecksummed payload on the wire.
//!
//! Multi-byte integers are little-endian throughout; strings are
//! length-prefixed UTF-8; floating-point values travel as bit patterns, so
//! a decoded value is bit-identical to the encoded one.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

pub mod backoff;
pub mod chaos;

pub use backoff::{sleep_cancellable, Backoff, RetryPolicy, Wait};
pub use chaos::{ChaosConfig, ChaosPlan, ChaosReport, ChaosTransport, SplitMix64};

/// Configures read/write deadlines on a transport, abstracting over
/// `TcpStream` and wrappers like [`ChaosTransport`] so every GLAIVE
/// socket — server handler, coordinator connection, worker, client —
/// can be given explicit deadlines regardless of how it is stacked.
///
/// `None` clears a deadline (blocking I/O); `Some(d)` makes reads/writes
/// fail with `WouldBlock`/`TimedOut` after `d` without progress, which
/// the cancellable frame reader turns into cancel checks and stall
/// detection.
pub trait Timeouts {
    /// Sets the read and write deadlines.
    ///
    /// # Errors
    ///
    /// Propagates the transport's failure to apply a deadline (e.g. a
    /// zero `Duration` on a socket).
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> std::io::Result<()>;
}

impl Timeouts for TcpStream {
    fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(read)?;
        self.set_write_timeout(write)
    }
}

/// Upper bound on a frame payload; larger declared lengths are rejected
/// before any allocation (a corrupted or hostile length prefix must not
/// OOM the receiver).
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Typed decode/transport failure. Every malformed input maps here — the
/// protocol layer never panics on wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload does not start with the expected magic/version.
    BadMagic,
    /// The payload ended before its declared content.
    Truncated,
    /// The trailing FNV-1a digest disagrees with the payload bytes.
    Checksum,
    /// The opcode byte names no known frame kind.
    UnknownOpcode(u8),
    /// A structural invariant failed (bad tag, absurd length, undecodable
    /// instruction, non-UTF-8 string…).
    Corrupt(&'static str),
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge(u32),
    /// The underlying stream failed mid-frame.
    Io(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadMagic => write!(f, "not a recognised frame (bad magic)"),
            ProtocolError::Truncated => write!(f, "frame truncated"),
            ProtocolError::Checksum => write!(f, "frame checksum mismatch"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
            ProtocolError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds the cap"),
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        ProtocolError::Io(e.to_string())
    }
}

/// 64-bit FNV-1a digest of `bytes` — the frame checksum, and the hash
/// family the artifact cache uses for content addressing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sealed frame payload: protocol magic, body, and the trailing FNV-1a
/// digest over both.
///
/// The only way to obtain a `Frame` is [`FrameBuilder::seal`], and
/// [`write_frame`] accepts nothing else — so every frame a GLAIVE service
/// puts on the wire is checksummed *by construction*. (Hostile-input tests
/// that need malformed bytes must hand-roll the length prefix themselves;
/// production code cannot.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame(Vec<u8>);

impl Frame {
    /// The sealed payload bytes (magic + body + digest), without the
    /// stream-level length prefix.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the frame, returning the sealed payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

/// Incremental encoder for one frame: starts from the protocol magic,
/// accumulates body fields in the little-endian wire discipline, and
/// [`seal`](FrameBuilder::seal)s into a [`Frame`] by appending the FNV-1a
/// digest of everything written.
///
/// ```
/// use glaive_wire::{open, FrameBuilder};
///
/// let mut b = FrameBuilder::new(b"GLVDOC01");
/// b.u8(0x01).u32(7).str("hi");
/// let frame = b.seal();
/// let mut r = open(frame.bytes(), b"GLVDOC01")?;
/// assert_eq!(r.u8()?, 0x01);
/// # Ok::<(), glaive_wire::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    buf: Vec<u8>,
}

impl FrameBuilder {
    /// Starts a frame for the protocol identified by `magic`.
    pub fn new(magic: &[u8; 8]) -> FrameBuilder {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(magic);
        FrameBuilder { buf }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut FrameBuilder {
        self.buf.push(v);
        self
    }

    /// Appends a `u32` in little-endian order.
    pub fn u32(&mut self, v: u32) -> &mut FrameBuilder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64` in little-endian order.
    pub fn u64(&mut self, v: u64) -> &mut FrameBuilder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f32` as its little-endian bit pattern.
    pub fn f32(&mut self, v: f32) -> &mut FrameBuilder {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut FrameBuilder {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Appends raw bytes verbatim (e.g. an encoded instruction).
    pub fn raw(&mut self, bytes: &[u8]) -> &mut FrameBuilder {
        self.buf.extend_from_slice(bytes);
        self
    }

    /// Seals the frame: appends the FNV-1a digest of everything written so
    /// far (magic included) and freezes the bytes.
    pub fn seal(self) -> Frame {
        let mut payload = self.buf;
        let digest = fnv1a(&payload);
        payload.extend_from_slice(&digest.to_le_bytes());
        Frame(payload)
    }
}

/// Validates magic and checksum, returning a reader over the body (opcode
/// onwards).
///
/// # Errors
///
/// [`ProtocolError::Truncated`] when the payload cannot even hold magic +
/// digest, [`ProtocolError::BadMagic`] on a foreign or version-mismatched
/// prefix, [`ProtocolError::Checksum`] when the trailing digest disagrees
/// with the payload bytes.
pub fn open<'a>(payload: &'a [u8], magic: &[u8; 8]) -> Result<Reader<'a>, ProtocolError> {
    if payload.len() < magic.len() + 8 {
        return Err(ProtocolError::Truncated);
    }
    if &payload[..magic.len()] != magic {
        return Err(ProtocolError::BadMagic);
    }
    let (head, tail) = payload.split_at(payload.len() - 8);
    let declared = u64::from_le_bytes(tail.try_into().expect("split at len - 8"));
    if fnv1a(head) != declared {
        return Err(ProtocolError::Checksum);
    }
    Ok(Reader {
        buf: &head[magic.len()..],
        pos: 0,
    })
}

/// A bounds-checked cursor over a sealed payload's body. Every accessor
/// returns [`ProtocolError::Truncated`] instead of reading past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtocolError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] at end of body.
    pub fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than 4 bytes remain.
    pub fn u32(&mut self) -> Result<u32, ProtocolError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than 8 bytes remain.
    pub fn u64(&mut self) -> Result<u64, ProtocolError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when fewer than 4 bytes remain.
    pub fn f32(&mut self) -> Result<f32, ProtocolError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// A `u32` element count whose `count × element_size` must still fit in
    /// the remaining bytes — rejects absurd counts before any allocation.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Truncated`] when the declared count cannot fit.
    pub fn counted(&mut self, element_size: usize) -> Result<usize, ProtocolError> {
        let n = self.u32()? as usize;
        if n.checked_mul(element_size)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(ProtocolError::Truncated);
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string of at most `cap` bytes.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Corrupt`] for over-cap or non-UTF-8 strings,
    /// [`ProtocolError::Truncated`] when the body ends early.
    pub fn string(&mut self, cap: usize) -> Result<String, ProtocolError> {
        let len = self.u32()? as usize;
        if len > cap {
            return Err(ProtocolError::Corrupt("string exceeds cap"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Corrupt("non-UTF-8 string"))
    }

    /// Rejects trailing garbage after a fully decoded body.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Corrupt`] when undecoded bytes remain.
    pub fn finish(self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::Corrupt("trailing bytes after body"));
        }
        Ok(())
    }
}

/// Writes one length-prefixed frame. Only sealed [`Frame`]s are accepted,
/// so a caller cannot put an unchecksummed payload on the wire.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let payload = frame.bytes();
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame payload (blocking).
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] for absurd length prefixes,
/// [`ProtocolError::Io`] for transport failures (including EOF mid-frame).
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, ProtocolError> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Result of a cancellable frame read.
pub enum ReadOutcome {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary — the peer hung up.
    Closed,
    /// The cancellation flag was raised during a read timeout.
    Cancelled,
    /// The stream failed or delivered an oversized prefix.
    Failed(ProtocolError),
}

/// Reads one length-prefixed frame from a stream configured with a read
/// timeout, re-checking `cancel` on every timeout so a draining service
/// never strands a handler in a blocking read.
///
/// `stall` is the mid-frame progress deadline: once any byte of a frame
/// has arrived, the peer must keep delivering — more than `stall` with
/// zero progress fails the read with a typed `Io` error, so a peer that
/// dies (or is chaos-frozen) halfway through a frame can never wedge the
/// handler thread forever. An *idle* connection at a frame boundary is
/// not a stall: waiting for the next request indefinitely is normal.
/// `None` preserves the old unbounded behaviour.
///
/// The framing is inlined (instead of calling [`read_frame`]) so the
/// timeout granularity sits below the frame level: a half-received frame
/// keeps its progress across cancel checks instead of corrupting the
/// stream position.
pub fn read_frame_cancellable<R: Read>(
    stream: &mut R,
    cancel: &std::sync::atomic::AtomicBool,
    stall: Option<Duration>,
) -> ReadOutcome {
    read_frame_bounded(stream, cancel, stall, true)
}

/// Like [`read_frame_cancellable`], but for strict request/response
/// clients awaiting a reply just solicited: the no-progress `deadline`
/// also covers the wait at the frame boundary. A peer that goes silent
/// after accepting a request is indistinguishable from a dead one, so
/// the idle exemption does not apply.
pub fn read_reply_cancellable<R: Read>(
    stream: &mut R,
    cancel: &std::sync::atomic::AtomicBool,
    deadline: Duration,
) -> ReadOutcome {
    read_frame_bounded(stream, cancel, Some(deadline), false)
}

fn read_frame_bounded<R: Read>(
    stream: &mut R,
    cancel: &std::sync::atomic::AtomicBool,
    stall: Option<Duration>,
    idle_exempt: bool,
) -> ReadOutcome {
    let mut header = [0u8; 4];
    match read_full(stream, &mut header, cancel, true, stall, idle_exempt) {
        FillOutcome::Done => {}
        FillOutcome::CleanEof => return ReadOutcome::Closed,
        FillOutcome::Cancelled => return ReadOutcome::Cancelled,
        FillOutcome::Failed(e) => return ReadOutcome::Failed(e),
    }
    let len = u32::from_le_bytes(header);
    if len > MAX_FRAME_LEN {
        return ReadOutcome::Failed(ProtocolError::FrameTooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, cancel, false, stall, idle_exempt) {
        FillOutcome::Done => ReadOutcome::Frame(payload),
        FillOutcome::CleanEof => ReadOutcome::Failed(ProtocolError::Truncated),
        FillOutcome::Cancelled => ReadOutcome::Cancelled,
        FillOutcome::Failed(e) => ReadOutcome::Failed(e),
    }
}

/// Fills `buf` completely from a timeout-configured stream, checking the
/// cancellation flag on each timeout. `at_boundary` marks reads that may
/// legitimately see a clean EOF (the start of a frame header); when
/// `idle_exempt` is set, a boundary read that has seen no bytes is also
/// exempt from the `stall` deadline (an idle peer is not a stalled one).
fn read_full<R: Read>(
    stream: &mut R,
    buf: &mut [u8],
    cancel: &std::sync::atomic::AtomicBool,
    at_boundary: bool,
    stall: Option<Duration>,
    idle_exempt: bool,
) -> FillOutcome {
    use std::io::ErrorKind;
    use std::sync::atomic::Ordering;

    let mut filled = 0;
    let mut last_progress = Instant::now();
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    FillOutcome::CleanEof
                } else {
                    FillOutcome::Failed(ProtocolError::Io("connection reset".into()))
                };
            }
            Ok(n) => {
                filled += n;
                last_progress = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if cancel.load(Ordering::Relaxed) {
                    return FillOutcome::Cancelled;
                }
                let stalled_wait = !(idle_exempt && at_boundary && filled == 0);
                if let Some(limit) = stall {
                    if stalled_wait && last_progress.elapsed() > limit {
                        return FillOutcome::Failed(ProtocolError::Io(format!(
                            "peer stalled mid-frame for over {limit:?}"
                        )));
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return FillOutcome::Failed(ProtocolError::Io(e.to_string())),
        }
    }
    FillOutcome::Done
}

enum FillOutcome {
    Done,
    CleanEof,
    Cancelled,
    Failed(ProtocolError),
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"GLVTST01";

    fn sample_frame() -> Frame {
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(0x07).u32(0xdead_beef).u64(42).f32(1.5).str("hello");
        b.seal()
    }

    #[test]
    fn seal_open_roundtrips() {
        let frame = sample_frame();
        let mut r = open(frame.bytes(), MAGIC).expect("opens");
        assert_eq!(r.u8().expect("opcode"), 0x07);
        assert_eq!(r.u32().expect("u32"), 0xdead_beef);
        assert_eq!(r.u64().expect("u64"), 42);
        assert_eq!(r.f32().expect("f32").to_bits(), 1.5f32.to_bits());
        assert_eq!(r.string(16).expect("str"), "hello");
        r.finish().expect("no trailing bytes");
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let frame = sample_frame().into_bytes();
        for pos in 0..frame.len() {
            for mask in [0x01u8, 0xff] {
                let mut bad = frame.clone();
                bad[pos] ^= mask;
                let outcome = open(&bad, MAGIC).map(|mut r| {
                    // A flip inside the body keeps magic+checksum...
                    // impossible: the checksum covers every payload byte.
                    let _ = r.u8();
                });
                assert!(outcome.is_err(), "flip {mask:#04x} at {pos} must fail");
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frame = sample_frame();
        let bytes = frame.bytes();
        for cut in 0..bytes.len() {
            assert!(open(&bytes[..cut], MAGIC).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn foreign_magic_is_rejected() {
        // A validly sealed frame of a *different* protocol: checksum fine,
        // magic wrong.
        let mut b = FrameBuilder::new(b"GLVOTHER");
        b.u8(0x07);
        let frame = b.seal();
        assert_eq!(
            open(frame.bytes(), MAGIC).err(),
            Some(ProtocolError::BadMagic)
        );
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(0x01).u8(0xaa); // 0xaa: undecoded trailing byte
        let frame = b.seal();
        let mut r = open(frame.bytes(), MAGIC).expect("opens");
        assert_eq!(r.u8().expect("opcode"), 0x01);
        assert_eq!(
            r.finish(),
            Err(ProtocolError::Corrupt("trailing bytes after body"))
        );
    }

    #[test]
    fn counted_rejects_absurd_counts_before_allocation() {
        let mut b = FrameBuilder::new(MAGIC);
        b.u8(0x01).u32(u32::MAX); // declares 4 billion elements
        let frame = b.seal();
        let mut r = open(frame.bytes(), MAGIC).expect("opens");
        let _ = r.u8().expect("opcode");
        assert_eq!(r.counted(8), Err(ProtocolError::Truncated));
    }

    #[test]
    fn cancellable_read_yields_frames_then_closed_then_cancel() {
        use std::sync::atomic::AtomicBool;

        let frame = sample_frame();
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).expect("write");
        let cancel = AtomicBool::new(false);
        let mut cursor = &wire[..];
        match read_frame_cancellable(&mut cursor, &cancel, None) {
            ReadOutcome::Frame(p) => assert_eq!(p, frame.bytes()),
            _ => panic!("expected a frame"),
        }
        assert!(matches!(
            read_frame_cancellable(&mut cursor, &cancel, None),
            ReadOutcome::Closed
        ));

        struct Stalled;
        impl Read for Stalled {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall"))
            }
        }
        let cancel = AtomicBool::new(true);
        assert!(matches!(
            read_frame_cancellable(&mut Stalled, &cancel, None),
            ReadOutcome::Cancelled
        ));
    }

    #[test]
    fn mid_frame_stall_fails_but_idle_boundary_does_not() {
        use std::sync::atomic::AtomicBool;

        /// Delivers `head` bytes, then times out forever: a peer frozen
        /// mid-frame.
        struct Frozen {
            head: Vec<u8>,
            pos: usize,
        }
        impl Read for Frozen {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos < self.head.len() {
                    let n = buf.len().min(self.head.len() - self.pos);
                    buf[..n].copy_from_slice(&self.head[self.pos..self.pos + n]);
                    self.pos += n;
                    Ok(n)
                } else {
                    std::thread::sleep(Duration::from_millis(5));
                    Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "idle"))
                }
            }
        }

        let cancel = AtomicBool::new(false);
        let stall = Some(Duration::from_millis(50));

        // A length prefix promising 100 bytes that never arrive: stall
        // fires with a typed Io error instead of hanging forever.
        let mut frozen = Frozen {
            head: 100u32.to_le_bytes().to_vec(),
            pos: 0,
        };
        let start = Instant::now();
        match read_frame_cancellable(&mut frozen, &cancel, stall) {
            ReadOutcome::Failed(ProtocolError::Io(msg)) => {
                assert!(msg.contains("stalled"), "got: {msg}")
            }
            _ => panic!("expected a stall failure"),
        }
        assert!(start.elapsed() < Duration::from_secs(10));

        // An idle connection at the frame boundary is NOT a stall: the
        // reader keeps waiting (here until cancel is raised).
        let idle_cancel = AtomicBool::new(false);
        let mut idle = Frozen {
            head: Vec::new(),
            pos: 0,
        };
        let start = Instant::now();
        let waiter = std::thread::scope(|s| {
            let handle = s.spawn(|| read_frame_cancellable(&mut idle, &idle_cancel, stall));
            std::thread::sleep(Duration::from_millis(200));
            idle_cancel.store(true, std::sync::atomic::Ordering::Relaxed);
            handle.join().expect("reader thread")
        });
        assert!(
            matches!(waiter, ReadOutcome::Cancelled),
            "idle boundary waits until cancelled, not until stall"
        );
        assert!(start.elapsed() >= Duration::from_millis(150));
    }

    #[test]
    fn stream_framing_roundtrips_and_caps_length() {
        let frames = [sample_frame(), sample_frame()];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).expect("write");
        }
        let mut cursor = &wire[..];
        for f in &frames {
            assert_eq!(read_frame(&mut cursor).expect("read"), f.bytes());
        }
        assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Io(_))));

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        oversized.extend_from_slice(&[0; 16]);
        assert_eq!(
            read_frame(&mut &oversized[..]),
            Err(ProtocolError::FrameTooLarge(u32::MAX))
        );
    }
}
