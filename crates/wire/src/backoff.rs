//! The unified retry/backoff policy for every GLAIVE client edge.
//!
//! Before this module each client handled transient failure its own way:
//! campaign workers slept a flat coordinator-suggested interval (ignoring
//! cancellation), the serve client and CLI `query` gave up on the first
//! transport hiccup, and nothing could reconnect after a coordinator or
//! server restart. [`Backoff`] replaces all of that with one typed policy:
//! deterministic exponential delay growth, seeded jitter (SplitMix64 — no
//! wall-clock or OS entropy in the schedule, so a retry trace replays
//! exactly), a max-attempt budget, and an optional deadline that bounds
//! the total time spent waiting.
//!
//! Two invariants matter for the chaos-soak suites:
//!
//! - **Determinism**: the delay sequence is a pure function of the policy
//!   (including its `jitter_seed`) and the number of waits taken so far.
//!   Two runs that fail at the same points wait the same schedule.
//! - **Cancellability**: every wait sleeps in short slices and re-checks
//!   the shared cancellation flag, so a shutdown signal interrupts a
//!   backoff promptly instead of after a full sleep.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::chaos::SplitMix64;

/// Granularity of cancellable sleeps: the longest a raised cancellation
/// flag can go unnoticed inside a wait.
const SLEEP_SLICE: Duration = Duration::from_millis(25);

/// A retry policy: how long to wait between attempts, and when to give
/// up. Shared by campaign workers, the serve client, the CLI `query`
/// client and the distributed truth source, so every edge of the system
/// retries the same way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry; doubles each attempt.
    pub base: Duration,
    /// Ceiling on a single delay (the exponential saturates here).
    pub max_delay: Duration,
    /// Retries before giving up with a typed exhaustion error.
    pub max_attempts: u32,
    /// Optional budget on the *total* time spent waiting, measured from
    /// the first failure: a wait that would overrun it gives up instead.
    pub deadline: Option<Duration>,
    /// Seed of the deterministic jitter stream (SplitMix64).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(20),
            max_delay: Duration::from_millis(500),
            max_attempts: 5,
            deadline: None,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy for clients that must survive a coordinator or server
    /// restart: many quick attempts under a generous total deadline.
    pub fn patient(deadline: Duration) -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(10),
            max_delay: Duration::from_millis(250),
            max_attempts: u32::MAX,
            deadline: Some(deadline),
            ..RetryPolicy::default()
        }
    }

    /// The same policy with a different jitter seed (so concurrent
    /// clients sharing a policy don't retry in lockstep).
    #[must_use]
    pub fn with_jitter_seed(self, seed: u64) -> RetryPolicy {
        RetryPolicy {
            jitter_seed: seed,
            ..self
        }
    }
}

/// Outcome of one [`Backoff::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// The full delay elapsed; retry now.
    Waited,
    /// The cancellation flag was raised mid-wait; stop retrying.
    Cancelled,
    /// The attempt budget or deadline is spent; give up with a typed
    /// error.
    Exhausted,
}

/// Live retry state for one logical operation: tracks the attempt count,
/// the jitter stream, and the deadline clock.
///
/// Call [`Backoff::wait`] after each transient failure; call
/// [`Backoff::reset`] after any successful progress so long-lived loops
/// (a campaign worker surviving many separate disconnects) get their full
/// budget back each time.
#[derive(Debug)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: SplitMix64,
    first_failure: Option<Instant>,
}

impl Backoff {
    /// Fresh retry state under `policy`.
    pub fn new(policy: RetryPolicy) -> Backoff {
        Backoff {
            policy,
            attempt: 0,
            rng: SplitMix64::new(policy.jitter_seed),
            first_failure: None,
        }
    }

    /// Attempts taken since construction or the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Restores the full attempt/deadline budget after successful
    /// progress. The jitter stream keeps advancing (never rewinds), so
    /// the delay sequence stays a pure function of the waits taken.
    pub fn reset(&mut self) {
        self.attempt = 0;
        self.first_failure = None;
    }

    /// The next delay, or `None` when the attempt budget or deadline is
    /// spent. Advances the attempt counter and jitter stream.
    ///
    /// The delay for attempt `n` is `base * 2^n` saturated at
    /// `max_delay`, jittered by ±1/8 of itself from the seeded stream —
    /// deterministic, and never dependent on the wall clock (the deadline
    /// only decides *whether* to wait, never how long).
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_attempts {
            return None;
        }
        let exp = self
            .policy
            .base
            .saturating_mul(1u32 << self.attempt.min(20))
            .min(self.policy.max_delay);
        // Jitter in [-exp/8, +exp/8], from the deterministic stream. The
        // draw happens unconditionally so the stream position is a pure
        // function of the attempt count.
        let jitter_span = (exp.as_nanos() as u64) / 4;
        let draw = self.rng.next();
        let delay = if jitter_span == 0 {
            exp
        } else {
            let offset = draw % (jitter_span + 1);
            Duration::from_nanos((exp.as_nanos() as u64) - jitter_span / 2 + offset)
        };
        let now = Instant::now();
        let started = *self.first_failure.get_or_insert(now);
        if let Some(budget) = self.policy.deadline {
            if now.saturating_duration_since(started) + delay > budget {
                return None;
            }
        }
        self.attempt += 1;
        Some(delay)
    }

    /// Takes the next backoff delay as a cancellable sleep.
    pub fn wait(&mut self, cancel: Option<&AtomicBool>) -> Wait {
        match self.next_delay() {
            None => Wait::Exhausted,
            Some(delay) => {
                if sleep_cancellable(delay, cancel) {
                    Wait::Waited
                } else {
                    Wait::Cancelled
                }
            }
        }
    }
}

/// Sleeps for `duration` in short slices, re-checking `cancel` between
/// slices. Returns `true` when the full duration elapsed, `false` when
/// the cancellation flag cut the sleep short.
///
/// This is the cancellable wait every client edge routes through — a
/// coordinator-suggested `Wait{retry_ms}`, a reconnect backoff, a retry
/// delay — so a shutdown signal is honoured within one slice (25 ms)
/// no matter how long the requested sleep.
pub fn sleep_cancellable(duration: Duration, cancel: Option<&AtomicBool>) -> bool {
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));
    if cancelled() {
        return false;
    }
    let mut remaining = duration;
    while !remaining.is_zero() {
        let slice = remaining.min(SLEEP_SLICE);
        std::thread::sleep(slice);
        remaining = remaining.saturating_sub(slice);
        if cancelled() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_schedule_is_deterministic_and_exponential() {
        let policy = RetryPolicy {
            base: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            max_attempts: 6,
            deadline: None,
            jitter_seed: 42,
        };
        let run = |seed| {
            let mut b = Backoff::new(policy.with_jitter_seed(seed));
            std::iter::from_fn(|| b.next_delay()).collect::<Vec<_>>()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 6, "stops at max_attempts");
        // Exponential growth up to the cap, within the ±1/8 jitter band.
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << i)
                .min(Duration::from_millis(100));
            assert!(
                *d >= exp - exp / 8 && *d <= exp + exp / 8,
                "attempt {i}: {d:?}"
            );
        }
        let c = run(43);
        assert_ne!(a, c, "different seed, different jitter");
    }

    #[test]
    fn reset_restores_the_attempt_budget() {
        let mut b = Backoff::new(RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        });
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_none(), "budget spent");
        b.reset();
        assert!(b.next_delay().is_some(), "reset restores the budget");
    }

    #[test]
    fn deadline_bounds_total_waiting() {
        let mut b = Backoff::new(RetryPolicy {
            base: Duration::from_millis(50),
            max_delay: Duration::from_millis(50),
            max_attempts: u32::MAX,
            deadline: Some(Duration::from_millis(1)),
            jitter_seed: 1,
        });
        // The first wait alone would overrun the 1 ms budget.
        assert!(b.next_delay().is_none(), "deadline-aware give-up");
    }

    #[test]
    fn cancellation_interrupts_a_long_sleep_promptly() {
        use std::sync::Arc;

        let cancel = Arc::new(AtomicBool::new(false));
        let flag = cancel.clone();
        let raiser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            flag.store(true, Ordering::Relaxed);
        });
        let start = Instant::now();
        let slept_fully = sleep_cancellable(Duration::from_secs(30), Some(&cancel));
        raiser.join().expect("raiser thread");
        assert!(!slept_fully, "cancellation cuts the sleep short");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "a raised flag must interrupt within a slice, not after 30 s"
        );
    }

    #[test]
    fn pre_raised_cancellation_skips_the_sleep_entirely() {
        let cancel = AtomicBool::new(true);
        let start = Instant::now();
        assert!(!sleep_cancellable(Duration::from_secs(30), Some(&cancel)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
