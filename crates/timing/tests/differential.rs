//! The timing layer's core guarantee, proven differentially: attaching a
//! [`TimingObserver`] to every simulation of a fault-injection campaign —
//! the golden run and each faulty run — changes *nothing* about the
//! architectural results. The rebuilt [`GroundTruth`] serialises to the
//! same GLVFIT01 bytes as the plain campaign, bit for bit, on benchmarks
//! from both instruction-set suites.
//!
//! This is what "timing layers onto `glaive-sim` as a pure observer"
//! means operationally: timing on vs. timing off is not approximately
//! equal, it is the identical artifact.

use glaive_bench_suite::{rv_suite, suite};
use glaive_faultsim::{BitSite, Campaign, CampaignConfig, GroundTruth, InjectionRecord};
use glaive_isa::{Isa, Program};
use glaive_sim::{classify, try_run_with_fault_observed, ExecConfig};
use glaive_timing::{try_profile, InOrderCost, TimingObserver, TimingProfile};

/// Campaign parameters kept small enough for a tier-1 test: every
/// simulation runs twice (plain and observed).
fn config(hang_factor: u64) -> CampaignConfig {
    CampaignConfig {
        bit_stride: 16,
        instances_per_site: 1,
        hang_factor,
        threads: 1,
        predict_dead_defs: true,
    }
}

/// Runs the campaign twice over `program`: once through the production
/// path (timing off), once rebuilt simulation-by-simulation with a timing
/// observer attached to every run (timing on). Returns both byte streams
/// plus the golden profile for sanity checks.
fn run_both<I: Isa>(
    program: &Program<I>,
    init_mem: &[u64],
    hang_factor: u64,
) -> (Vec<u8>, Vec<u8>, TimingProfile) {
    let campaign = Campaign::try_new(program, init_mem, config(hang_factor)).expect("valid config");
    let plain = campaign.run();

    let plan = campaign.plan().expect("plannable");
    // Golden run, observed: the architectural result must be what the
    // plan computed without observation.
    let (golden, profile) = try_profile(
        program,
        init_mem,
        &ExecConfig::default(),
        InOrderCost::default(),
    )
    .expect("well-formed");
    assert_eq!(golden, plan.golden, "observation perturbed the golden run");

    // Every fault injection, observed (fresh observer per run, as a timing
    // campaign would do), classified against the observed golden.
    let mut predicted = plan.predicted.iter().peekable();
    let mut records: Vec<InjectionRecord> = Vec::with_capacity(plan.specs.len());
    for (i, spec) in plan.specs.iter().enumerate() {
        if let Some(&&(pi, rec)) = predicted.peek() {
            if pi == i {
                predicted.next();
                records.push(rec);
                continue;
            }
        }
        let mut observer = TimingObserver::new(InOrderCost::default(), program);
        let faulty =
            try_run_with_fault_observed(program, init_mem, &plan.fault_cfg, spec, &mut observer)
                .expect("well-formed");
        records.push(InjectionRecord {
            site: BitSite {
                pc: spec.pc,
                slot: spec.slot,
                bit: spec.bit,
            },
            instance: spec.instance,
            outcome: classify(&golden, &faulty),
        });
    }
    let timed = GroundTruth::from_parts(
        program.name().to_string(),
        records,
        golden,
        plan.predicted.len(),
    )
    .expect("consistent parts");

    (plain.to_bytes(), timed.to_bytes(), profile)
}

#[test]
fn ground_truth_is_bit_identical_with_timing_on_or_off_isa_a() {
    for bench in suite(7) {
        if !matches!(bench.name, "blackscholes" | "lu") {
            continue; // two representative Table-II benchmarks keep it fast
        }
        let (plain, timed, profile) = run_both(bench.program(), &bench.init_mem, 4);
        assert_eq!(plain, timed, "{}: GLVFIT01 bytes diverged", bench.name);
        // The observation was real: a non-trivial profile was collected.
        assert!(profile.total_cycles > 0, "{}: empty profile", bench.name);
        assert!(
            profile.per_pc.iter().any(|t| t.residency_count > 0),
            "{}: no residency intervals closed",
            bench.name,
        );
    }
}

#[test]
fn ground_truth_is_bit_identical_with_timing_on_or_off_isa_b() {
    for kernel in rv_suite(7) {
        if !matches!(kernel.name, "rv_dotprod" | "rv_gcd") {
            continue;
        }
        let (plain, timed, profile) = run_both(&kernel.program, &kernel.init_mem, 4);
        assert_eq!(plain, timed, "{}: GLVFIT01 bytes diverged", kernel.name);
        assert!(profile.total_cycles > 0, "{}: empty profile", kernel.name);
    }
}
