//! Property tests for the cycle-cost layer, over randomly generated
//! straight-line programs on both instruction-set backends:
//!
//! * **Monotonicity** — appending instructions to a program never decreases
//!   its total cycle count, for every shipped [`CycleModel`].
//! * **Unit-cost identity** — under [`UnitCost`], the total cycle count of a
//!   clean run equals its retired (dynamic) instruction count.
//!
//! The generator is a fixed-seed LCG, so failures replay deterministically.

use glaive_isa::rv::{RvAluOp, RvAsm};
use glaive_isa::{AluOp, Asm, Isa, Program, Reg};
use glaive_sim::ExecConfig;
use glaive_timing::{try_profile, CycleModel, InOrderCost, UnitCost};

/// Deterministic xorshift-style generator (no external crates).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One abstract straight-line operation, realisable on either backend.
/// Trap-free by construction: no division, no memory, no control flow.
#[derive(Clone, Copy)]
enum Op {
    Li { rd: u8, imm: i16 },
    Alu { kind: u8, rd: u8, rs1: u8, rs2: u8 },
    Mov { rd: u8, rs: u8 },
    Out { rs: u8 },
}

fn random_ops(rng: &mut Rng, len: usize) -> Vec<Op> {
    // Registers 1..=7 are valid and writable on both backends (x0 would be
    // a hardwired-zero special case on ISA-B).
    let reg = |rng: &mut Rng| (1 + rng.below(7)) as u8;
    (0..len)
        .map(|_| match rng.below(4) {
            0 => Op::Li {
                rd: reg(rng),
                imm: rng.below(2000) as i16 - 1000,
            },
            1 | 2 => Op::Alu {
                kind: rng.below(6) as u8,
                rd: reg(rng),
                rs1: reg(rng),
                rs2: reg(rng),
            },
            _ => {
                if rng.below(2) == 0 {
                    Op::Mov {
                        rd: reg(rng),
                        rs: reg(rng),
                    }
                } else {
                    Op::Out { rs: reg(rng) }
                }
            }
        })
        .collect()
}

/// Realises `ops[..k]` + halt as an ISA-A program.
fn isa_a_program(ops: &[Op], k: usize) -> Program {
    const ALU: [AluOp; 6] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
    ];
    let mut asm = Asm::new("prop-a");
    for op in &ops[..k] {
        match *op {
            Op::Li { rd, imm } => {
                asm.li(Reg(rd), i64::from(imm));
            }
            Op::Alu { kind, rd, rs1, rs2 } => {
                asm.alu(ALU[kind as usize], Reg(rd), Reg(rs1), Reg(rs2));
            }
            Op::Mov { rd, rs } => {
                asm.mov(Reg(rd), Reg(rs));
            }
            Op::Out { rs } => {
                asm.out(Reg(rs));
            }
        }
    }
    asm.halt();
    asm.finish().expect("straight-line code resolves")
}

/// Realises `ops[..k]` + ebreak as an ISA-B program.
fn isa_b_program(ops: &[Op], k: usize) -> Program<glaive_isa::rv::RvIsa> {
    const ALU: [RvAluOp; 6] = [
        RvAluOp::Add,
        RvAluOp::Sub,
        RvAluOp::Mul,
        RvAluOp::And,
        RvAluOp::Or,
        RvAluOp::Xor,
    ];
    let mut asm = RvAsm::new("prop-b");
    for op in &ops[..k] {
        match *op {
            Op::Li { rd, imm } => {
                asm.li(Reg(rd), i32::from(imm));
            }
            Op::Alu { kind, rd, rs1, rs2 } => {
                asm.alu(ALU[kind as usize], Reg(rd), Reg(rs1), Reg(rs2));
            }
            Op::Mov { rd, rs } => {
                asm.mv(Reg(rd), Reg(rs));
            }
            Op::Out { rs } => {
                // ISA-B emits via the a0/ecall convention.
                asm.mv(Reg(10), Reg(rs));
                asm.ecall();
            }
        }
    }
    asm.ebreak();
    asm.finish().expect("straight-line code resolves")
}

fn check_monotone_and_unit_identity<I: Isa>(programs: &[Program<I>], label: &str) {
    let cfg = ExecConfig::default();
    let models: [&dyn CycleModel; 2] = [&UnitCost, &InOrderCost::default()];
    for (m, model) in models.iter().enumerate() {
        let mut prev_cycles = 0u64;
        for (k, p) in programs.iter().enumerate() {
            let (result, profile) = match m {
                0 => try_profile(p, &[], &cfg, UnitCost).expect("well-formed"),
                _ => try_profile(p, &[], &cfg, InOrderCost::default()).expect("well-formed"),
            };
            assert!(
                result.status.is_clean(),
                "{label}: trap-free generator produced a dirty run at k={k}"
            );
            assert!(
                profile.total_cycles >= prev_cycles,
                "{label}/{}: adding instructions decreased total cycles at k={k} \
                 ({prev_cycles} -> {})",
                model.name(),
                profile.total_cycles,
            );
            prev_cycles = profile.total_cycles;
            // Unit cost: exactly one cycle per retired instruction.
            if m == 0 {
                assert_eq!(
                    profile.total_cycles, result.dyn_instrs,
                    "{label}: unit-cost total diverged from retired count at k={k}"
                );
                assert_eq!(profile.retired, result.dyn_instrs);
            }
        }
    }
}

#[test]
fn costs_are_monotone_and_unit_cost_counts_retirements_isa_a() {
    let mut rng = Rng(0x005E_ED0A);
    for _ in 0..8 {
        let ops = random_ops(&mut rng, 40);
        let programs: Vec<Program> = (0..=ops.len())
            .step_by(5)
            .map(|k| isa_a_program(&ops, k))
            .collect();
        check_monotone_and_unit_identity(&programs, "ISA-A");
    }
}

#[test]
fn costs_are_monotone_and_unit_cost_counts_retirements_isa_b() {
    let mut rng = Rng(0x005E_ED0B);
    for _ in 0..8 {
        let ops = random_ops(&mut rng, 40);
        let programs: Vec<Program<glaive_isa::rv::RvIsa>> = (0..=ops.len())
            .step_by(5)
            .map(|k| isa_b_program(&ops, k))
            .collect();
        check_monotone_and_unit_identity(&programs, "ISA-B");
    }
}
