//! Budgeted protection-set selection: given per-instruction vulnerability
//! values and per-instruction protection costs in cycles, choose the set
//! that covers the most vulnerability without exceeding a cycle-overhead
//! budget — the knapsack refinement of the paper's top-K ranking.

/// One candidate instruction for protection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtectionItem {
    /// Static instruction index.
    pub pc: usize,
    /// Vulnerability covered by protecting this instruction (the severity
    /// ranking key `2·I_C + I_S`, optionally residency-weighted).
    pub value: f64,
    /// Protection overhead in cycles (e.g. the re-execution cost of a
    /// duplicate-and-compare harden, i.e. the cycles the instruction
    /// contributed to the profile).
    pub cost: u64,
}

/// The outcome of one [`ProtectionSelector::select`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Cycle budget the selection was made under.
    pub budget: u64,
    /// Cycles spent by the chosen set (≤ `budget`).
    pub spent: u64,
    /// Summed vulnerability value of the chosen set.
    pub covered: f64,
    /// Chosen items in pick order (densest first, ties by ascending PC).
    pub chosen: Vec<ProtectionItem>,
}

/// A greedy density-ordered knapsack selector.
///
/// Items are considered in descending `value / cost` density; an item that
/// does not fit in the remaining budget is skipped and the scan continues
/// (the classic greedy heuristic — within a factor of two of optimal, and
/// exact in the common case of many small items). Zero-cost items with
/// positive value are free coverage and always chosen first.
///
/// Determinism: density ties — and the zero-cost group — break by
/// ascending PC via exact integer cross-multiplication, so two runs over
/// the same inputs always return the identical `Selection`. Items with
/// non-positive value are never chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectionSelector {
    budget: u64,
}

impl ProtectionSelector {
    /// Creates a selector with an absolute cycle budget.
    pub fn new(budget_cycles: u64) -> Self {
        ProtectionSelector {
            budget: budget_cycles,
        }
    }

    /// Derives the budget as `overhead_pct` percent of `total_cycles`
    /// (integer arithmetic, truncating), the form served by the
    /// `BudgetQuery` protocol request.
    pub fn with_overhead_pct(total_cycles: u64, overhead_pct: u32) -> Self {
        let budget = total_cycles
            .saturating_mul(u64::from(overhead_pct))
            .saturating_div(100);
        ProtectionSelector { budget }
    }

    /// The absolute cycle budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Chooses the protection set from `items` under the budget.
    pub fn select(&self, items: &[ProtectionItem]) -> Selection {
        let mut ranked: Vec<ProtectionItem> =
            items.iter().copied().filter(|it| it.value > 0.0).collect();
        // Descending density value/cost; cost 0 sorts as infinitely dense.
        // Cross-multiplication keeps the comparison exact in f64 (cost is
        // a u64 well inside the 2^53 mantissa for any real profile).
        ranked.sort_by(|a, b| {
            let da = a.value * b.cost as f64;
            let db = b.value * a.cost as f64;
            db.total_cmp(&da).then_with(|| a.pc.cmp(&b.pc))
        });

        let mut selection = Selection {
            budget: self.budget,
            spent: 0,
            covered: 0.0,
            chosen: Vec::new(),
        };
        for item in ranked {
            match selection.spent.checked_add(item.cost) {
                Some(spent) if spent <= self.budget => {
                    selection.spent = spent;
                    selection.covered += item.value;
                    selection.chosen.push(item);
                }
                _ => {}
            }
        }
        selection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(pc: usize, value: f64, cost: u64) -> ProtectionItem {
        ProtectionItem { pc, value, cost }
    }

    #[test]
    fn picks_densest_items_first_and_skips_what_does_not_fit() {
        let items = [
            item(0, 1.0, 10), // density 0.1
            item(1, 2.0, 2),  // density 1.0
            item(2, 3.0, 30), // density 0.1
            item(3, 0.5, 1),  // density 0.5
        ];
        let sel = ProtectionSelector::new(13).select(&items);
        // Order: pc1 (1.0), pc3 (0.5), then the 0.1 tie pc0 before pc2;
        // pc2 (30 cycles) does not fit and is skipped.
        let pcs: Vec<usize> = sel.chosen.iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![1, 3, 0]);
        assert_eq!(sel.spent, 13);
        assert!((sel.covered - 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_items_are_free_coverage() {
        let items = [item(5, 0.1, 0), item(2, 0.2, 0), item(0, 9.0, 4)];
        let sel = ProtectionSelector::new(0).select(&items);
        // No budget at all: only the free items, in ascending-pc order
        // (equal infinite density).
        let pcs: Vec<usize> = sel.chosen.iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![2, 5]);
        assert_eq!(sel.spent, 0);
    }

    #[test]
    fn ties_break_by_ascending_pc() {
        let items = [item(7, 1.0, 2), item(3, 1.0, 2), item(5, 1.0, 2)];
        let sel = ProtectionSelector::new(4).select(&items);
        let pcs: Vec<usize> = sel.chosen.iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![3, 5]);
    }

    #[test]
    fn worthless_items_are_never_chosen() {
        let items = [item(0, 0.0, 0), item(1, -1.0, 0), item(2, 1.0, 1)];
        let sel = ProtectionSelector::new(10).select(&items);
        let pcs: Vec<usize> = sel.chosen.iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![2]);
    }

    #[test]
    fn overhead_pct_budget_is_integer_exact() {
        assert_eq!(ProtectionSelector::with_overhead_pct(1000, 5).budget(), 50);
        assert_eq!(ProtectionSelector::with_overhead_pct(999, 5).budget(), 49);
        assert_eq!(ProtectionSelector::with_overhead_pct(0, 100).budget(), 0);
        // An absurd product saturates instead of wrapping.
        assert_eq!(
            ProtectionSelector::with_overhead_pct(u64::MAX, 200).budget(),
            u64::MAX / 100,
        );
    }

    #[test]
    fn selection_is_deterministic() {
        let items: Vec<ProtectionItem> = (0..64)
            .map(|i| item(i, ((i * 37) % 11) as f64 / 7.0, ((i * 13) % 9) as u64))
            .collect();
        let a = ProtectionSelector::new(20).select(&items);
        let b = ProtectionSelector::new(20).select(&items);
        assert_eq!(a, b);
    }
}
