use glaive_isa::{MemAccess, OpcodeClass};

/// A per-instruction cycle-cost model, keyed off the ISA-neutral
/// [`OpcodeClass`] so one model prices both backends (ISA-A and ISA-B)
/// identically.
///
/// Models are *pure*: the cost of an instruction depends only on its class
/// and static memory behaviour, never on machine state, so any two runs of
/// the same program produce the same cycle counts. The latency must be at
/// least 1 cycle — every retired instruction occupies the issue slot — which
/// is what makes total cost monotone in the retire stream (adding
/// instructions can never make a program cheaper).
pub trait CycleModel {
    /// Cycles from issue to result availability for one instruction of
    /// `class` with the given static memory behaviour. Must be ≥ 1.
    fn latency(&self, class: OpcodeClass, mem: Option<MemAccess>) -> u64;

    /// Stable model name, recorded in experiment artifacts.
    fn name(&self) -> &'static str;
}

/// The trivial baseline: every instruction costs exactly one cycle, so the
/// total cycle count of a run equals its retired-instruction count. Useful
/// as a property-test oracle and as the "no microarchitecture" control in
/// timing-feature experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCost;

impl CycleModel for UnitCost {
    fn latency(&self, _class: OpcodeClass, _mem: Option<MemAccess>) -> u64 {
        1
    }

    fn name(&self) -> &'static str {
        "unit"
    }
}

/// A simple single-issue in-order pipeline cost model: per-class base
/// latencies with loads priced above stores (the load-to-use path is the
/// classic in-order stall source). Combined with the scoreboard in
/// [`TimingObserver`](crate::TimingObserver), dependent instructions stall
/// until their operands' producing latencies have elapsed.
///
/// The latencies are deliberately round numbers in the spirit of a textbook
/// five-stage pipeline, not a calibrated microarchitecture — the subsystem's
/// claims (residency weighting, budget selection) need relative cost, not
/// absolute accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InOrderCost {
    /// Integer ALU latency (default 1).
    pub int_alu: u64,
    /// Floating-point ALU latency (default 3).
    pub fp_alu: u64,
    /// Immediate/move/conversion latency (default 1).
    pub mv: u64,
    /// Load-to-use latency (default 4).
    pub load: u64,
    /// Store commit latency (default 2).
    pub store: u64,
    /// Branch/jump latency, covering redirect cost (default 2).
    pub control: u64,
    /// Output-port latency (default 1).
    pub output: u64,
}

impl Default for InOrderCost {
    fn default() -> Self {
        InOrderCost {
            int_alu: 1,
            fp_alu: 3,
            mv: 1,
            load: 4,
            store: 2,
            control: 2,
            output: 1,
        }
    }
}

impl CycleModel for InOrderCost {
    fn latency(&self, class: OpcodeClass, mem: Option<MemAccess>) -> u64 {
        let cycles = match class {
            OpcodeClass::IntAlu => self.int_alu,
            OpcodeClass::FpAlu => self.fp_alu,
            OpcodeClass::Move => self.mv,
            OpcodeClass::Memory => match mem {
                Some(MemAccess { is_store: true, .. }) => self.store,
                _ => self.load,
            },
            OpcodeClass::Control => self.control,
            OpcodeClass::Output => self.output,
        };
        cycles.max(1)
    }

    fn name(&self) -> &'static str {
        "in-order"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_is_one_everywhere() {
        for class in OpcodeClass::ALL {
            assert_eq!(UnitCost.latency(class, None), 1);
            let st = Some(MemAccess {
                is_store: true,
                alias: 0,
            });
            assert_eq!(UnitCost.latency(class, st), 1);
        }
    }

    #[test]
    fn in_order_distinguishes_loads_from_stores() {
        let m = InOrderCost::default();
        let ld = Some(MemAccess {
            is_store: false,
            alias: 3,
        });
        let st = Some(MemAccess {
            is_store: true,
            alias: 3,
        });
        assert_eq!(m.latency(OpcodeClass::Memory, ld), 4);
        assert_eq!(m.latency(OpcodeClass::Memory, st), 2);
        assert!(m.latency(OpcodeClass::FpAlu, None) > m.latency(OpcodeClass::IntAlu, None));
    }

    #[test]
    fn latencies_are_clamped_to_at_least_one_cycle() {
        let degenerate = InOrderCost {
            int_alu: 0,
            fp_alu: 0,
            mv: 0,
            load: 0,
            store: 0,
            control: 0,
            output: 0,
        };
        for class in OpcodeClass::ALL {
            assert_eq!(degenerate.latency(class, None), 1);
        }
    }
}
