use std::marker::PhantomData;

use glaive_isa::{Isa, Program};
use glaive_sim::{ExecConfig, MachineError, RunResult, StepObserver};

use crate::cost::CycleModel;

/// Number of per-node dynamic timing features derived from a
/// [`TimingProfile`]: issue fraction, residency fraction, and stall share
/// (see [`TimingProfile::node_features`]).
pub const TIMING_FEATURE_DIM: usize = 3;

/// Cycle accounting for one static instruction, accumulated over all of its
/// dynamic executions in a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcTiming {
    /// Dynamic executions observed.
    pub executions: u64,
    /// Issue cycle of the first execution (meaningful when
    /// `executions > 0`).
    pub first_issue: u64,
    /// Summed issue-to-completion latency charged by the cost model.
    pub cycles: u64,
    /// Summed cycles this instruction stalled waiting on operands.
    pub stalls: u64,
    /// Summed residency of the values this instruction defined: cycles
    /// from each definition to its last use before overwrite (or to the
    /// close of the run for values still live at exit).
    pub residency_sum: u64,
    /// Number of closed definition intervals behind `residency_sum`.
    pub residency_count: u64,
}

/// The timing summary of one observed run.
///
/// A profile is a pure function of (program, input image, cost model): the
/// observer that builds it is deterministic and read-only, so profiles can
/// be compared, cached, and serialized without a tolerance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingProfile {
    /// Completion cycle of the last retired instruction (0 for an empty
    /// run).
    pub total_cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Per-static-instruction accounting, indexed by PC.
    pub per_pc: Vec<PcTiming>,
}

impl TimingProfile {
    /// Total operand-wait cycles across all instructions.
    pub fn total_stalls(&self) -> u64 {
        self.per_pc.iter().map(|t| t.stalls).sum()
    }

    /// Mean cycles a value defined at `pc` stayed live, or `None` when the
    /// instruction defined nothing (or never executed).
    pub fn avg_residency(&self, pc: usize) -> Option<f64> {
        let t = self.per_pc.get(pc)?;
        if t.residency_count == 0 {
            return None;
        }
        Some(t.residency_sum as f64 / t.residency_count as f64)
    }

    /// The [`TIMING_FEATURE_DIM`] dynamic features for one static
    /// instruction, each normalised into `[0, 1]`:
    ///
    /// 1. *issue fraction* — first issue cycle over total cycles (late
    ///    values have less program left to corrupt),
    /// 2. *residency fraction* — mean definition residency over total
    ///    cycles (the AVF intuition: long-lived values are exposed longer),
    /// 3. *stall share* — this instruction's operand stalls over all
    ///    stalls in the run (dependence-chain pressure).
    ///
    /// Instructions that never executed get all-zero features, as do all
    /// instructions of a zero-cycle run.
    pub fn node_features(&self, pc: usize) -> [f32; TIMING_FEATURE_DIM] {
        let Some(t) = self.per_pc.get(pc) else {
            return [0.0; TIMING_FEATURE_DIM];
        };
        if t.executions == 0 || self.total_cycles == 0 {
            return [0.0; TIMING_FEATURE_DIM];
        }
        let total = self.total_cycles as f64;
        let issue_frac = t.first_issue as f64 / total;
        let residency_frac = match self.avg_residency(pc) {
            Some(r) => r / total,
            None => 0.0,
        };
        let total_stalls = self.total_stalls();
        let stall_share = if total_stalls == 0 {
            0.0
        } else {
            t.stalls as f64 / total_stalls as f64
        };
        [issue_frac as f32, residency_frac as f32, stall_share as f32]
    }
}

/// An open definition interval: register defined at `def_issue` by `pc`,
/// last read at `last_touch`.
#[derive(Debug, Clone, Copy)]
struct LiveDef {
    pc: usize,
    def_issue: u64,
    last_touch: u64,
}

/// A [`StepObserver`] that prices the retire stream with a [`CycleModel`]
/// and a register scoreboard, producing a [`TimingProfile`].
///
/// The machine model is a single-issue in-order pipeline: one instruction
/// issues per cycle, an instruction whose source operands are not yet
/// available stalls until the producing latency has elapsed, and the run's
/// total cycle count is the completion cycle of its last retirement. The
/// observer is read-only — it watches `(pc, instr)` pairs and touches no
/// architectural state, so enabling it cannot change a run's result.
#[derive(Debug)]
pub struct TimingObserver<I: Isa, M: CycleModel> {
    model: M,
    /// Next cycle at which the issue slot is free.
    cursor: u64,
    /// Max completion cycle seen so far.
    total: u64,
    retired: u64,
    /// Per-register cycle at which the last write's value is available.
    ready: Vec<u64>,
    /// Per-register open definition interval (residency tracking).
    live: Vec<Option<LiveDef>>,
    per_pc: Vec<PcTiming>,
    _isa: PhantomData<I>,
}

impl<I: Isa, M: CycleModel> TimingObserver<I, M> {
    /// Creates an observer sized for `program`.
    pub fn new(model: M, program: &Program<I>) -> Self {
        TimingObserver {
            model,
            cursor: 0,
            total: 0,
            retired: 0,
            ready: vec![0; I::NUM_REGS],
            live: vec![None; I::NUM_REGS],
            per_pc: vec![PcTiming::default(); program.len()],
            _isa: PhantomData,
        }
    }

    fn close(per_pc: &mut [PcTiming], def: LiveDef) {
        let t = &mut per_pc[def.pc];
        t.residency_sum += def.last_touch - def.def_issue;
        t.residency_count += 1;
    }

    /// Closes all still-live definition intervals and returns the profile.
    pub fn finish(mut self) -> TimingProfile {
        for slot in &mut self.live {
            if let Some(def) = slot.take() {
                Self::close(&mut self.per_pc, def);
            }
        }
        TimingProfile {
            total_cycles: self.total,
            retired: self.retired,
            per_pc: self.per_pc,
        }
    }
}

impl<I: Isa, M: CycleModel> StepObserver<I> for TimingObserver<I, M> {
    fn on_retire(&mut self, pc: usize, instr: &I::Instr) {
        let uses = I::uses(instr);
        let defs = I::defs(instr);
        let latency = self
            .model
            .latency(I::opcode_class(instr), I::mem_access(instr))
            .max(1);

        let operands_ready = uses
            .iter()
            .map(|r| self.ready[r.index()])
            .max()
            .unwrap_or(0);
        let issue = self.cursor.max(operands_ready);
        let complete = issue + latency;
        let t = &mut self.per_pc[pc];
        if t.executions == 0 {
            t.first_issue = issue;
        }
        t.executions += 1;
        t.cycles += latency;
        t.stalls += issue - self.cursor;
        self.cursor = issue + 1;
        self.total = self.total.max(complete);
        self.retired += 1;

        // Residency: reads extend the open interval of their source value;
        // a write closes the previous interval of the destination and opens
        // a new one. Reads run first so `acc = acc + i` credits the old
        // `acc` definition with this use before replacing it.
        for r in uses {
            if let Some(def) = self.live[r.index()].as_mut() {
                def.last_touch = issue;
            }
        }
        for r in defs {
            self.ready[r.index()] = complete;
            if let Some(prev) = self.live[r.index()].take() {
                Self::close(&mut self.per_pc, prev);
            }
            self.live[r.index()] = Some(LiveDef {
                pc,
                def_issue: issue,
                last_touch: issue,
            });
        }
    }
}

/// Runs `program` under `model`, returning both the (observation-invariant)
/// architectural result and the timing profile.
///
/// # Errors
///
/// [`MachineError::InitMemTooLarge`] if `init_mem` exceeds the program's
/// declared data memory.
pub fn try_profile<I: Isa, M: CycleModel>(
    program: &Program<I>,
    init_mem: &[u64],
    cfg: &ExecConfig,
    model: M,
) -> Result<(RunResult, TimingProfile), MachineError> {
    let mut observer = TimingObserver::new(model, program);
    let result = glaive_sim::try_run_observed(program, init_mem, cfg, &mut observer)?;
    Ok((result, observer.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{InOrderCost, UnitCost};
    use glaive_isa::{AluOp, Asm, Reg};

    fn chain_program() -> Program {
        // li r1; li r2; add r3 = r1 + r2; add r4 = r3 + r3; out r4; halt —
        // a pure dependence chain.
        let mut asm = Asm::new("chain");
        asm.li(Reg(1), 2);
        asm.li(Reg(2), 3);
        asm.alu(AluOp::Add, Reg(3), Reg(1), Reg(2));
        asm.alu(AluOp::Add, Reg(4), Reg(3), Reg(3));
        asm.out(Reg(4));
        asm.halt();
        asm.finish().expect("resolves")
    }

    #[test]
    fn unit_cost_total_equals_retired_count() {
        let p = chain_program();
        let (result, profile) =
            try_profile(&p, &[], &ExecConfig::default(), UnitCost).expect("well-formed");
        assert_eq!(result.output, vec![10]);
        assert_eq!(profile.retired, result.dyn_instrs);
        assert_eq!(profile.total_cycles, result.dyn_instrs);
        assert_eq!(profile.total_stalls(), 0);
    }

    #[test]
    fn dependence_chain_stalls_under_in_order_model() {
        // li r1; cvt r2 = i2f r1; fadd r3 = r2 + r2; fadd r4 = r3 + r3 —
        // the 3-cycle FP adds force the dependent consumer to wait.
        let mut asm = Asm::new("fp-chain");
        asm.li(Reg(1), 2);
        asm.cvt(glaive_isa::CvtOp::IntToFloat, Reg(2), Reg(1));
        asm.fpu(glaive_isa::FpuOp::FAdd, Reg(3), Reg(2), Reg(2));
        asm.fpu(glaive_isa::FpuOp::FAdd, Reg(4), Reg(3), Reg(3));
        asm.out(Reg(4));
        asm.halt();
        let p = asm.finish().expect("resolves");
        let (_, unit) = try_profile(&p, &[], &ExecConfig::default(), UnitCost).expect("ok");
        let (_, inorder) =
            try_profile(&p, &[], &ExecConfig::default(), InOrderCost::default()).expect("ok");
        // The chained FP adds wait on their producers: strictly more cycles
        // than the unit model, with the stall charged to the consumers.
        assert!(inorder.total_cycles > unit.total_cycles);
        assert_eq!(inorder.per_pc[2].stalls, 0); // cvt result ready in time
        assert!(inorder.per_pc[3].stalls > 0); // waits on the first fadd
        assert_eq!(
            inorder.total_stalls(),
            inorder.per_pc.iter().map(|t| t.stalls).sum::<u64>()
        );
    }

    #[test]
    fn residency_spans_def_to_last_use() {
        let p = chain_program();
        let (_, profile) = try_profile(&p, &[], &ExecConfig::default(), UnitCost).expect("ok");
        // r3 (defined by pc 2) is last read at pc 3: one cycle of residency
        // under the unit model (issue cycles 2 and 3).
        assert_eq!(profile.per_pc[2].residency_sum, 1);
        assert_eq!(profile.per_pc[2].residency_count, 1);
        // r1 (pc 0, issue 0) is last read by the add at issue cycle 2.
        assert_eq!(profile.per_pc[0].residency_sum, 2);
        // A never-executed PC has zero features.
        assert_eq!(profile.node_features(999), [0.0; TIMING_FEATURE_DIM]);
        // Executed nodes produce normalised, in-range features.
        let f = profile.node_features(2);
        assert!(f.iter().all(|v| (0.0..=1.0).contains(v)), "{f:?}");
    }

    #[test]
    fn profile_is_deterministic() {
        let p = chain_program();
        let (_, a) =
            try_profile(&p, &[], &ExecConfig::default(), InOrderCost::default()).expect("ok");
        let (_, b) =
            try_profile(&p, &[], &ExecConfig::default(), InOrderCost::default()).expect("ok");
        assert_eq!(a, b);
    }
}
