//! Cycle-cost models layered onto the GLAIVE functional simulator.
//!
//! `glaive-sim` answers *what* a program computes (and how a single-bit
//! upset changes that); this crate answers *when* — in the style of a
//! functional simulator with a timing model layered on top, the timing
//! side watches the retire stream through [`glaive_sim::StepObserver`] and
//! never touches architectural state, so fault-injection ground truth is
//! bit-identical with timing enabled or disabled (enforced by this crate's
//! differential tests).
//!
//! Three layers build on one another:
//!
//! 1. **[`CycleModel`]** — per-opcode-class latencies, ISA-neutral. The
//!    [`UnitCost`] baseline (1 cycle each, total = retired count) and a
//!    textbook [`InOrderCost`] pipeline/memory model ship in-tree.
//! 2. **[`TimingObserver`] / [`TimingProfile`]** — a register-scoreboard
//!    observer that prices a run: issue cycles, operand stalls, and the
//!    *residency* of every defined value (cycles from definition to last
//!    use before overwrite — the AVF intuition that long-lived corrupt
//!    values matter more).
//! 3. **[`ProtectionSelector`]** — a deterministic greedy knapsack that
//!    turns per-instruction vulnerability values plus per-instruction
//!    protection costs into the best protection set under an N%-overhead
//!    cycle budget (the `glaive budget` query).
//!
//! # Example
//!
//! ```
//! use glaive_isa::{AluOp, Asm, Reg};
//! use glaive_sim::ExecConfig;
//! use glaive_timing::{try_profile, UnitCost};
//!
//! let mut asm = Asm::new("double");
//! asm.li(Reg(1), 21);
//! asm.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
//! asm.out(Reg(2));
//! asm.halt();
//! let p = asm.finish()?;
//!
//! let (result, profile) = try_profile(&p, &[], &ExecConfig::default(), UnitCost)?;
//! assert_eq!(result.output, vec![42]);
//! // Unit cost: one cycle per retired instruction.
//! assert_eq!(profile.total_cycles, result.dyn_instrs);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod cost;
mod profile;
mod select;

pub use cost::{CycleModel, InOrderCost, UnitCost};
pub use profile::{try_profile, PcTiming, TimingObserver, TimingProfile, TIMING_FEATURE_DIM};
pub use select::{ProtectionItem, ProtectionSelector, Selection};
