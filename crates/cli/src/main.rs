//! `glaive-cli` — command-line interface to the GLAIVE pipeline.
//!
//! ```text
//! glaive-cli list                          benchmarks and their statistics
//! glaive-cli disasm <bench>                disassemble a benchmark
//! glaive-cli campaign <bench> [opts]       run an FI campaign, print FI table
//! glaive-cli graph <bench> [opts]          bit-level CDFG statistics
//! glaive-cli train <out.model> <b1,b2,..>  train GLAIVE, save the model
//! glaive-cli apply <model> <bench> [opts]  estimate with a saved model
//!
//! options: --seed N   --stride N   --instances N   --top N
//!          --verbose  --no-cache   --deadline-secs N
//!          --resume (campaign)     --fail-fast (train)
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
