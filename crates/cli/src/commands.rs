//! Subcommand implementations for the `glaive` CLI.

use std::error::Error;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use glaive::telemetry::{Fanout, Observer, StderrProgress, TimingRecorder};
use glaive::{train_models, truth_key, ArtifactCache, Pipeline, PipelineConfig, QuorumPolicy};
use glaive_bench_suite::{suite, Benchmark};
use glaive_campaign::{run_worker_with, Coordinator, FabricConfig, WorkerOptions};
use glaive_cdfg::{Cdfg, CdfgConfig};
use glaive_faultsim::{
    Campaign, CampaignConfig, CampaignProgress, CheckpointSink, NoProgress, RunControl, VulnTuple,
};
use glaive_gnn::GraphSage;
use glaive_serve::{Client, ProgramSpec, ResilientClient, Server, ServerConfig};
use glaive_sim::run;
use glaive_wire::{ChaosConfig, ChaosPlan, RetryPolicy};

/// Usage text printed on argument errors.
pub const USAGE: &str = "\
usage:
  glaive-cli list
  glaive-cli disasm   <benchmark>
  glaive-cli campaign <benchmark> [--seed N] [--stride N] [--instances N] [--top N]
                      [--deadline-secs N] [--resume] [--out truth.bin]
  glaive-cli campaign coordinate <benchmark> [--workers-listen HOST:PORT]
                      [--chunk N] [--lease-ms N] [--checkpoint-interval N]
                      [--out truth.bin] [--seed N] [--stride N] [--instances N]
                      [--top N] [--deadline-secs N] [--resume]
  glaive-cli campaign worker --connect HOST:PORT [--name NAME]
                      [--patience SECS]
  glaive-cli graph    <benchmark> [--seed N] [--stride N] [--dot]
  glaive-cli train    <out.model> <bench1,bench2,...> [--seed N] [--stride N]
                      [--deadline-secs N] [--fail-fast] [--quick]
                      [--train-threads N]
  glaive-cli apply    <model> <benchmark> [--seed N] [--top N]
  glaive-cli serve    <model> [--addr HOST:PORT] [--workers N] [--stride N]
                      [--queue-bound N] [--cache-shards N]
  glaive-cli query    <addr> <benchmark> [--seed N] [--stride N] [--top N]
  glaive-cli query    <addr> (--stats | --ping | --shutdown)
  glaive-cli budget   <addr> <benchmark> [--seed N] [--stride N]
                      [--overhead-pct N]

global flags: --verbose (stage telemetry on stderr)
              --patience SECS (worker/query: keep retrying transient
                               network failures for up to SECS before
                               giving up)
              --no-cache (skip the on-disk artifact cache for train)
              --deadline-secs N (soft wall-clock limit; interrupted work
                                 stops at the next batch boundary)
              --resume (campaign: checkpoint progress into the artifact
                        cache and resume a previously interrupted run)
              --fail-fast (train: abort the whole suite on the first
                           benchmark failure instead of degrading)
              --train-threads N (train: data-parallel gradient workers;
                                 0 = all cores; any value trains a
                                 bit-identical model)

benchmarks: dijkstra astar streamcluster jmeint sobel inversek2j
            blackscholes swaptions fft radix ctaes lu";

type CliResult = Result<(), Box<dyn Error>>;

/// Simple flag parser: `--name value` pairs after the positional args.
struct Flags {
    seed: u64,
    stride: usize,
    instances: usize,
    top: usize,
    dot: bool,
    verbose: bool,
    no_cache: bool,
    deadline_secs: Option<u64>,
    resume: bool,
    fail_fast: bool,
    addr: String,
    workers: usize,
    queue_bound: usize,
    cache_shards: usize,
    stats: bool,
    ping: bool,
    shutdown: bool,
    quick: bool,
    workers_listen: String,
    connect: Option<String>,
    name: Option<String>,
    chunk: usize,
    lease_ms: u64,
    checkpoint_interval: usize,
    out: Option<String>,
    patience_secs: Option<u64>,
    train_threads: usize,
    overhead_pct: u32,
}

fn parse_flags(args: &[String]) -> Result<Flags, Box<dyn Error>> {
    let mut flags = Flags {
        seed: 7,
        stride: 8,
        instances: 2,
        top: 15,
        dot: false,
        verbose: false,
        no_cache: false,
        deadline_secs: None,
        resume: false,
        fail_fast: false,
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        queue_bound: ServerConfig::default().queue_bound,
        cache_shards: ServerConfig::default().cache_shards,
        stats: false,
        ping: false,
        shutdown: false,
        quick: false,
        workers_listen: "127.0.0.1:0".to_string(),
        connect: None,
        name: None,
        chunk: 64,
        lease_ms: 5000,
        checkpoint_interval: 4096,
        out: None,
        patience_secs: None,
        train_threads: 0,
        overhead_pct: 5,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = |it: &mut std::slice::Iter<'_, String>| -> Result<u64, Box<dyn Error>> {
            it.next()
                .ok_or_else(|| format!("flag {a} needs a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad value for {a}: {e}").into())
        };
        match a.as_str() {
            "--dot" => flags.dot = true,
            "--verbose" => flags.verbose = true,
            "--no-cache" => flags.no_cache = true,
            "--resume" => flags.resume = true,
            "--fail-fast" => flags.fail_fast = true,
            "--deadline-secs" => flags.deadline_secs = Some(value(&mut it)?),
            "--quick" => flags.quick = true,
            "--stats" => flags.stats = true,
            "--ping" => flags.ping = true,
            "--shutdown" => flags.shutdown = true,
            "--addr" => {
                flags.addr = it
                    .next()
                    .ok_or_else(|| format!("flag {a} needs a value"))?
                    .clone();
            }
            "--workers" => flags.workers = value(&mut it)? as usize,
            "--queue-bound" => flags.queue_bound = value(&mut it)? as usize,
            "--cache-shards" => flags.cache_shards = value(&mut it)? as usize,
            "--workers-listen" => {
                flags.workers_listen = it
                    .next()
                    .ok_or_else(|| format!("flag {a} needs a value"))?
                    .clone();
            }
            "--connect" => {
                flags.connect = Some(
                    it.next()
                        .ok_or_else(|| format!("flag {a} needs a value"))?
                        .clone(),
                );
            }
            "--name" => {
                flags.name = Some(
                    it.next()
                        .ok_or_else(|| format!("flag {a} needs a value"))?
                        .clone(),
                );
            }
            "--out" => {
                flags.out = Some(
                    it.next()
                        .ok_or_else(|| format!("flag {a} needs a value"))?
                        .clone(),
                );
            }
            "--patience" => flags.patience_secs = Some(value(&mut it)?),
            "--chunk" => flags.chunk = value(&mut it)? as usize,
            "--lease-ms" => flags.lease_ms = value(&mut it)?,
            "--checkpoint-interval" => flags.checkpoint_interval = value(&mut it)? as usize,
            "--seed" => flags.seed = value(&mut it)?,
            "--stride" => flags.stride = value(&mut it)? as usize,
            "--instances" => flags.instances = value(&mut it)? as usize,
            "--train-threads" => flags.train_threads = value(&mut it)? as usize,
            "--overhead-pct" => flags.overhead_pct = value(&mut it)? as u32,
            "--top" => flags.top = value(&mut it)? as usize,
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    Ok(flags)
}

fn find_benchmark(name: &str, seed: u64) -> Result<Benchmark, Box<dyn Error>> {
    suite(seed)
        .into_iter()
        .find(|b| b.name == name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `glaive-cli list`)").into())
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &[String]) -> CliResult {
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("disasm") => {
            let name = args.get(1).ok_or("disasm needs a benchmark name")?;
            cmd_disasm(name, &parse_flags(&args[2..])?)
        }
        Some("campaign") => match args.get(1).map(String::as_str) {
            Some("coordinate") => {
                let name = args
                    .get(2)
                    .ok_or("campaign coordinate needs a benchmark name")?;
                cmd_campaign_coordinate(name, &parse_flags(&args[3..])?)
            }
            Some("worker") => cmd_campaign_worker(&parse_flags(&args[2..])?),
            Some(name) => cmd_campaign(name, &parse_flags(&args[2..])?),
            None => Err("campaign needs a benchmark name".into()),
        },
        Some("graph") => {
            let name = args.get(1).ok_or("graph needs a benchmark name")?;
            cmd_graph(name, &parse_flags(&args[2..])?)
        }
        Some("train") => {
            let out = args.get(1).ok_or("train needs an output path")?;
            let names = args.get(2).ok_or("train needs a benchmark list")?;
            cmd_train(out, names, &parse_flags(&args[3..])?)
        }
        Some("apply") => {
            let model = args.get(1).ok_or("apply needs a model path")?;
            let name = args.get(2).ok_or("apply needs a benchmark name")?;
            cmd_apply(model, name, &parse_flags(&args[3..])?)
        }
        Some("serve") => {
            let model = args.get(1).ok_or("serve needs a model path")?;
            cmd_serve(model, &parse_flags(&args[2..])?)
        }
        Some("query") => {
            let addr = args.get(1).ok_or("query needs a server address")?;
            // The benchmark name is optional for --stats/--ping/--shutdown.
            let (name, rest) = match args.get(2) {
                Some(a) if !a.starts_with("--") => (Some(a.as_str()), &args[3..]),
                _ => (None, &args[2..]),
            };
            cmd_query(addr, name, &parse_flags(rest)?)
        }
        Some("budget") => {
            let addr = args.get(1).ok_or("budget needs a server address")?;
            let name = args.get(2).ok_or("budget needs a benchmark name")?;
            cmd_budget(addr, name, &parse_flags(&args[3..])?)
        }
        Some(other) => Err(format!("unknown command `{other}`").into()),
        None => Err("no command given".into()),
    }
}

fn cmd_list() -> CliResult {
    println!(
        "{:<14} {:<8} {:<6} {:>8} {:>10} {:>8}",
        "benchmark", "category", "split", "instrs", "dyn", "outputs"
    );
    for b in suite(7) {
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        println!(
            "{:<14} {:<8} {:<6} {:>8} {:>10} {:>8}",
            b.name,
            match b.category {
                glaive_bench_suite::Category::Control => "control",
                glaive_bench_suite::Category::Data => "data",
            },
            match b.split {
                glaive_bench_suite::Split::TrainTest => "TT",
                glaive_bench_suite::Split::Validation => "V",
            },
            b.program().len(),
            r.dyn_instrs,
            r.output.len()
        );
    }
    Ok(())
}

fn cmd_disasm(name: &str, flags: &Flags) -> CliResult {
    let b = find_benchmark(name, flags.seed)?;
    print!("{}", b.program().disassemble());
    Ok(())
}

/// Prints campaign progress at ~10% increments when `--verbose` is set.
struct DecileProgress(std::sync::atomic::AtomicUsize);

impl CampaignProgress for DecileProgress {
    fn injections(&self, done: usize, total: usize) {
        let decile = done * 10 / total.max(1);
        if decile > self.0.swap(decile, std::sync::atomic::Ordering::Relaxed) {
            eprintln!("[campaign] {done}/{total} injections");
        }
    }
}

fn cmd_campaign(name: &str, flags: &Flags) -> CliResult {
    let b = find_benchmark(name, flags.seed)?;
    let config = CampaignConfig {
        bit_stride: flags.stride,
        instances_per_site: flags.instances,
        ..CampaignConfig::default()
    };
    // --resume checkpoints into the artifact cache under the same key the
    // pipeline uses for this campaign's ground truth, so an interrupted run
    // (deadline or Ctrl-C between batches) picks up where it left off.
    let sink = flags
        .resume
        .then(|| ArtifactCache::at_default_location().checkpoint_sink(truth_key(&b, &config)));
    let decile = DecileProgress(std::sync::atomic::AtomicUsize::new(0));
    let ctrl = RunControl {
        progress: if flags.verbose { &decile } else { &NoProgress },
        cancel: None,
        deadline: flags
            .deadline_secs
            .map(|s| Instant::now() + Duration::from_secs(s)),
        checkpoint: sink.as_ref().map(|s| s as &dyn CheckpointSink),
        checkpoint_interval: 4096,
    };
    let campaign = Campaign::try_new(b.program(), &b.init_mem, config)
        .map_err(|e| format!("invalid campaign parameters: {e}"))?;
    let truth = campaign.run_supervised(&ctrl).map_err(|e| {
        if matches!(e, glaive_faultsim::CampaignError::Interrupted { .. }) {
            let hint = if flags.resume {
                "rerun with --resume to continue from the checkpoint"
            } else {
                "rerun with --resume to checkpoint progress and make the run resumable"
            };
            format!("{e}; {hint}")
        } else {
            e.to_string()
        }
    })?;
    if let Some(sink) = &sink {
        sink.clear();
    }
    if let Some(out) = &flags.out {
        std::fs::write(out, truth.to_bytes())?;
        println!("wrote ground truth to {out}");
    }
    print_truth_summary(name, &b, &truth, flags.top)
}

/// Prints the campaign summary shared by `campaign` and
/// `campaign coordinate`. Uses the `try_*` aggregations throughout: a
/// degenerate truth (however it was produced) is a typed error here,
/// never a panic.
fn print_truth_summary(
    name: &str,
    b: &Benchmark,
    truth: &glaive_faultsim::GroundTruth,
    top: usize,
) -> CliResult {
    println!(
        "{}: {} injections ({} statically predicted) over {} instructions",
        name,
        truth.total_injections(),
        truth.predicted_injections(),
        truth.instructions_covered()
    );
    let pv = truth.try_program_vulnerability()?;
    println!(
        "program vulnerability: crash={:.3} sdc={:.3} masked={:.3}\n",
        pv.crash, pv.sdc, pv.masked
    );
    let mut ivs = truth.try_instruction_vulnerability()?;
    ivs.sort_by(|a, b| b.tuple.ranking_key().total_cmp(&a.tuple.ranking_key()));
    println!("most vulnerable instructions:");
    println!(
        "{:<6} {:>6} {:>6} {:>7}  instruction",
        "pc", "crash", "sdc", "masked"
    );
    for iv in ivs.iter().take(top) {
        println!(
            "{:<6} {:>6.3} {:>6.3} {:>7.3}  {}",
            iv.pc,
            iv.tuple.crash,
            iv.tuple.sdc,
            iv.tuple.masked,
            b.program().instrs()[iv.pc]
        );
    }
    Ok(())
}

/// `campaign coordinate`: drives a distributed campaign over TCP workers
/// instead of the local thread pool, with the same checkpoint/resume,
/// deadline and summary behaviour as the serial `campaign` command — and,
/// by construction, the same bytes out.
fn cmd_campaign_coordinate(name: &str, flags: &Flags) -> CliResult {
    let b = find_benchmark(name, flags.seed)?;
    let config = CampaignConfig {
        bit_stride: flags.stride,
        instances_per_site: flags.instances,
        ..CampaignConfig::default()
    };
    let sink = flags
        .resume
        .then(|| ArtifactCache::at_default_location().checkpoint_sink(truth_key(&b, &config)));
    let decile = DecileProgress(std::sync::atomic::AtomicUsize::new(0));
    let ctrl = RunControl {
        progress: if flags.verbose { &decile } else { &NoProgress },
        cancel: None,
        deadline: flags
            .deadline_secs
            .map(|s| Instant::now() + Duration::from_secs(s)),
        checkpoint: sink.as_ref().map(|s| s as &dyn CheckpointSink),
        checkpoint_interval: flags.checkpoint_interval,
    };
    let fabric = FabricConfig {
        chunk_size: flags.chunk.max(1),
        lease: Duration::from_millis(flags.lease_ms.max(1)),
        ..FabricConfig::default()
    };
    let listener = std::net::TcpListener::bind(flags.workers_listen.as_str())?;
    // Supervising processes (and the smoke test) parse this line for the
    // OS-chosen port, so print it before blocking in the accept loop.
    println!("coordinating on {}", listener.local_addr()?);
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let truth = Coordinator::try_new(b.program(), &b.init_mem, config, fabric)?
        .run(listener, &ctrl)
        .map_err(|e| {
            if matches!(
                e,
                glaive_campaign::FabricError::Campaign(
                    glaive_faultsim::CampaignError::Interrupted { .. }
                )
            ) {
                let hint = if flags.resume {
                    "rerun with --resume to continue from the checkpoint"
                } else {
                    "rerun with --resume to checkpoint progress and make the run resumable"
                };
                format!("{e}; {hint}")
            } else {
                e.to_string()
            }
        })?;
    if let Some(sink) = &sink {
        sink.clear();
    }
    if let Some(out) = &flags.out {
        std::fs::write(out, truth.to_bytes())?;
        println!("wrote ground truth to {out}");
    }
    print_truth_summary(name, &b, &truth, flags.top)
}

/// Fault injection opted into via `GLAIVE_CHAOS_SEED` /
/// `GLAIVE_CHAOS_RATE`. The libraries never read the environment
/// themselves; the CLI is the one place the opt-in is wired through.
fn chaos_from_env() -> Option<ChaosPlan> {
    let plan = ChaosConfig::from_env().map(ChaosPlan::new);
    if let Some(p) = &plan {
        eprintln!(
            "chaos: seed {:#018x}, fault rate {} ppm",
            p.config().seed,
            p.config().fault_ppm
        );
    }
    plan
}

/// Retry policy for the network edges: default budget (~0.6 s of
/// backoff), or `--patience SECS` of persistent redialling for fleets
/// that must survive a coordinator/server restart.
fn retry_from_flags(flags: &Flags) -> RetryPolicy {
    match flags.patience_secs {
        Some(secs) => RetryPolicy::patient(Duration::from_secs(secs)),
        None => RetryPolicy::default(),
    }
}

fn print_chaos_report(plan: &ChaosPlan) {
    let r = plan.report();
    eprintln!(
        "chaos: injected {} delays, {} short ops, {} corruptions, {} disconnects",
        r.delays, r.short_ops, r.corruptions, r.disconnects
    );
}

/// `campaign worker`: joins a coordinator's fleet and computes leased
/// chunks until the campaign completes or the coordinator goes away.
fn cmd_campaign_worker(flags: &Flags) -> CliResult {
    let addr = flags
        .connect
        .as_deref()
        .ok_or("campaign worker needs --connect HOST:PORT")?;
    let default_name = format!("worker-{}", std::process::id());
    let name = flags.name.as_deref().unwrap_or(&default_name);
    let options = WorkerOptions {
        retry: retry_from_flags(flags),
        chaos: chaos_from_env(),
        // Disjoint per process, so co-located workers under the same
        // seed still draw distinct fault schedules.
        stream_base: u64::from(std::process::id()) << 32,
        ..WorkerOptions::default()
    };
    let chaos = options.chaos.clone();
    let report = run_worker_with(addr, name, None, options)?;
    println!(
        "{name}: {} chunks completed, {} injections simulated \
         ({} retries, {} reconnects)",
        report.chunks, report.simulated, report.retries, report.reconnects
    );
    if let Some(plan) = &chaos {
        print_chaos_report(plan);
    }
    Ok(())
}

fn cmd_graph(name: &str, flags: &Flags) -> CliResult {
    let b = find_benchmark(name, flags.seed)?;
    if flags.dot {
        print!("{}", glaive_cdfg::instruction_dot(b.program()));
        return Ok(());
    }
    let g = Cdfg::build(
        b.program(),
        &CdfgConfig {
            bit_stride: flags.stride,
        },
    );
    let stats = g.edge_stats();
    println!("{name}: bit-level CDFG at stride {}", flags.stride);
    println!("  nodes:          {}", g.node_count());
    println!("  edges (dedup):  {}", g.edge_count());
    println!("  intra-operand:  {}", stats.intra);
    println!("  data (D_D):     {}", stats.data);
    println!("  control (D_C):  {}", stats.control);
    println!("  memory (D_M):   {}", stats.memory);
    let max_in = (0..g.node_count() as u32)
        .map(|v| g.preds(v).len())
        .max()
        .unwrap_or(0);
    let isolated = (0..g.node_count() as u32)
        .filter(|&v| g.preds(v).is_empty() && g.succs(v).is_empty())
        .count();
    println!("  max in-degree:  {max_in}");
    println!("  isolated nodes: {isolated}");
    Ok(())
}

fn pipeline_config(flags: &Flags) -> PipelineConfig {
    // --quick starts from the subsampled test configuration (small model,
    // few epochs) — campaign/graph knobs set by explicit flags still win.
    let base = if flags.quick {
        PipelineConfig::quick_test()
    } else {
        PipelineConfig::default()
    };
    PipelineConfig {
        bit_stride: flags.stride,
        instances_per_site: flags.instances,
        train_threads: flags.train_threads,
        suite_deadline: flags.deadline_secs.map(Duration::from_secs),
        // Training degrades gracefully by default: one surviving benchmark
        // is enough to fit a model; --fail-fast restores strictness.
        quorum: if flags.fail_fast {
            QuorumPolicy::FailFast
        } else {
            QuorumPolicy::MinBenchmarks(1)
        },
        ..base
    }
}

fn cmd_train(out: &str, names: &str, flags: &Flags) -> CliResult {
    let config = pipeline_config(flags);
    let recorder = Arc::new(TimingRecorder::new());
    let observer: Arc<dyn Observer> = if flags.verbose {
        Arc::new(Fanout(vec![Arc::new(StderrProgress), recorder.clone()]))
    } else {
        Arc::new(Fanout(vec![recorder.clone()]))
    };
    let mut builder = Pipeline::builder(config).observer(observer);
    if !flags.no_cache {
        builder = builder.default_cache();
    }
    let pipeline = builder.build()?;

    let mut benches = Vec::new();
    for name in names.split(',') {
        benches.push(find_benchmark(name.trim(), flags.seed)?);
    }
    eprintln!("preparing {} benchmarks (FI campaigns)...", benches.len());
    let mut report = pipeline.prepare_benchmarks_supervised(benches);
    if let Some(summary) = report.failure_summary() {
        eprint!("{summary}");
    }
    report.check_quorum(config.quorum)?;
    let train = report.take_prepared();
    let refs: Vec<&_> = train.iter().collect();
    eprintln!("training GLAIVE on {} benchmarks...", refs.len());
    let models = train_models(&refs, &config);
    let bytes = models.glaive_model().to_bytes();
    std::fs::write(out, &bytes)?;
    if flags.verbose {
        eprint!("{}", recorder.summary());
    }
    println!("saved GLAIVE model to {out} ({} bytes)", bytes.len());
    Ok(())
}

fn cmd_apply(model_path: &str, name: &str, flags: &Flags) -> CliResult {
    let bytes = std::fs::read(model_path)?;
    let model = GraphSage::from_bytes(&bytes)?;
    let b = find_benchmark(name, flags.seed)?;
    // Estimation needs only the graph — no fault injection.
    let g = Cdfg::build(
        b.program(),
        &CdfgConfig {
            bit_stride: flags.stride,
        },
    );
    let features = glaive_nn_matrix(&g);
    let probs = model.predict_proba(&features, g.preds_csr());

    // Aggregate the bit distribution per instruction (paper §III-D).
    let tuples = glaive::aggregate_bit_probs(&g, b.program().len(), &probs);
    let mut ranked: Vec<(usize, VulnTuple)> = tuples
        .iter()
        .enumerate()
        .filter_map(|(pc, t)| t.map(|t| (pc, t)))
        .collect();
    ranked.sort_by(|a, b| b.1.ranking_key().total_cmp(&a.1.ranking_key()));

    println!("{name}: estimated most vulnerable instructions (no FI run)");
    println!(
        "{:<6} {:>6} {:>6} {:>7}  instruction",
        "pc", "crash", "sdc", "masked"
    );
    let mut buf = String::new();
    for &(pc, t) in ranked.iter().take(flags.top) {
        writeln!(
            buf,
            "{:<6} {:>6.3} {:>6.3} {:>7.3}  {}",
            pc,
            t.crash,
            t.sdc,
            t.masked,
            b.program().instrs()[pc]
        )?;
    }
    print!("{buf}");
    Ok(())
}

fn cmd_serve(model_path: &str, flags: &Flags) -> CliResult {
    let bytes = std::fs::read(model_path)?;
    let model = GraphSage::from_bytes(&bytes)?;
    let recorder = Arc::new(TimingRecorder::new());
    let observer: Arc<dyn Observer> = if flags.verbose {
        Arc::new(Fanout(vec![Arc::new(StderrProgress), recorder.clone()]))
    } else {
        Arc::new(Fanout(vec![recorder.clone()]))
    };
    let server = Server::bind(
        model,
        flags.addr.as_str(),
        ServerConfig {
            workers: flags.workers,
            queue_bound: flags.queue_bound,
            cache_shards: flags.cache_shards,
            ..ServerConfig::default()
        },
    )?
    .with_observer(observer);
    // The smoke test (and any supervising process) parses this line for
    // the OS-chosen port, so print it before blocking in the run loop.
    println!("listening on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let stats = server.run()?;
    println!(
        "served {} requests: {} predictions in {} batches (peak batch {}), \
         cache {} hits / {} misses, {} errors, {} busy rejections, \
         {} stall evictions, peak queue {}",
        stats.requests,
        stats.predictions,
        stats.batches,
        stats.peak_batch,
        stats.cache_hits,
        stats.cache_misses,
        stats.errors,
        stats.busy_rejections,
        stats.stall_evictions,
        stats.queue_depth_max
    );
    if flags.verbose {
        eprint!("{}", recorder.summary());
    }
    Ok(())
}

fn cmd_query(addr: &str, name: Option<&str>, flags: &Flags) -> CliResult {
    if flags.shutdown {
        // Shutdown is deliberately *not* retried: a lost ack after the
        // server accepted it would make a blind re-send ambiguous.
        let mut client = Client::connect(addr)?;
        client.shutdown_server()?;
        println!("server draining");
        return Ok(());
    }
    let mut client = ResilientClient::new(addr, retry_from_flags(flags));
    let chaos = chaos_from_env();
    if let Some(plan) = &chaos {
        client = client.with_chaos(plan.clone(), u64::from(std::process::id()) << 32);
    }
    let outcome = cmd_query_resilient(&mut client, name, flags);
    let report = client.report();
    if report.retries > 0 {
        eprintln!(
            "query survived {} transient failures ({} reconnects, {} busy replies)",
            report.retries, report.reconnects, report.busy_responses
        );
    }
    if let Some(plan) = &chaos {
        print_chaos_report(plan);
    }
    outcome
}

fn cmd_query_resilient(
    client: &mut ResilientClient,
    name: Option<&str>,
    flags: &Flags,
) -> CliResult {
    if flags.ping {
        client.ping()?;
        println!("pong");
        return Ok(());
    }
    if flags.stats {
        let s = client.stats()?;
        println!("requests:     {}", s.requests);
        println!("predictions:  {}", s.predictions);
        println!("batches:      {}", s.batches);
        println!("peak batch:   {}", s.peak_batch);
        println!("cache hits:   {}", s.cache_hits);
        println!("cache misses: {}", s.cache_misses);
        println!("errors:       {}", s.errors);
        println!("busy:         {}", s.busy_rejections);
        println!("stalls cut:   {}", s.stall_evictions);
        println!("peak queue:   {}", s.queue_depth_max);
        return Ok(());
    }
    let name = name.ok_or("query needs a benchmark name (or --stats/--ping/--shutdown)")?;
    // Resolve locally too, so the reply's PCs render as instructions.
    let b = find_benchmark(name, flags.seed)?;
    let reply = client.predict(
        &ProgramSpec::Suite {
            name: name.to_string(),
            seed: flags.seed,
        },
        flags.stride as u32,
        flags.top as u32,
        false,
    )?;
    println!(
        "{name}: served estimate over {} bit nodes (batch of {})",
        reply.node_count, reply.batch_size
    );
    println!(
        "{:<6} {:>6} {:>6} {:>7}  instruction",
        "pc", "crash", "sdc", "masked"
    );
    for &pc in &reply.top_k {
        let [crash, sdc, masked] = reply.tuples[pc as usize].ok_or("ranked pc lacks a tuple")?;
        println!(
            "{:<6} {:>6.3} {:>6.3} {:>7.3}  {}",
            pc,
            crash,
            sdc,
            masked,
            b.program().instrs()[pc as usize]
        );
    }
    Ok(())
}

/// `budget`: asks a running server for a protection set under a cycle
/// budget (`--overhead-pct`% of the benchmark's golden-run cycles) and
/// renders the chosen instructions with their costs and scores.
fn cmd_budget(addr: &str, name: &str, flags: &Flags) -> CliResult {
    // Resolve locally too, so the reply's PCs render as instructions.
    let b = find_benchmark(name, flags.seed)?;
    let mut client = ResilientClient::new(addr, retry_from_flags(flags));
    let chaos = chaos_from_env();
    if let Some(plan) = &chaos {
        client = client.with_chaos(plan.clone(), u64::from(std::process::id()) << 32);
    }
    let reply = client.budget(
        &ProgramSpec::Suite {
            name: name.to_string(),
            seed: flags.seed,
        },
        flags.stride as u32,
        flags.overhead_pct,
    )?;
    let report = client.report();
    if report.retries > 0 {
        eprintln!(
            "budget survived {} transient failures ({} reconnects, {} busy replies)",
            report.retries, report.reconnects, report.busy_responses
        );
    }
    if let Some(plan) = &chaos {
        print_chaos_report(plan);
    }
    println!(
        "{name}: protect {} instructions within {}% overhead \
         ({} of {} budget cycles spent, golden run {} cycles)",
        reply.items.len(),
        flags.overhead_pct,
        reply.spent_cycles,
        reply.budget_cycles,
        reply.total_cycles
    );
    println!("{:<6} {:>8} {:>7}  instruction", "pc", "cycles", "score");
    for item in &reply.items {
        println!(
            "{:<6} {:>8} {:>7.3}  {}",
            item.pc,
            item.cycles,
            item.score,
            b.program().instrs()[item.pc as usize]
        );
    }
    println!("covered vulnerability: {:.3}", reply.covered);
    Ok(())
}

/// Builds the node feature matrix of a graph as an owned `Matrix`.
fn glaive_nn_matrix(g: &Cdfg) -> glaive_nn::Matrix {
    glaive_nn::Matrix::from_vec(g.node_count(), glaive_cdfg::FEATURE_DIM, g.feature_matrix())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(dispatch(&argv(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn missing_positional_args_are_errors() {
        assert!(dispatch(&argv(&["disasm"])).is_err());
        assert!(dispatch(&argv(&["campaign"])).is_err());
        assert!(dispatch(&argv(&["train", "out.model"])).is_err());
        assert!(dispatch(&argv(&["apply", "model.bin"])).is_err());
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        assert!(dispatch(&argv(&["disasm", "nonexistent"])).is_err());
    }

    #[test]
    fn flags_parse_and_reject_garbage() {
        let f =
            parse_flags(&argv(&["--seed", "3", "--stride", "32", "--top", "4"])).expect("parses");
        assert_eq!(f.seed, 3);
        assert_eq!(f.stride, 32);
        assert_eq!(f.top, 4);
        assert!(parse_flags(&argv(&["--bogus", "1"])).is_err());
        assert!(parse_flags(&argv(&["--seed"])).is_err());
        assert!(parse_flags(&argv(&["--seed", "abc"])).is_err());
    }

    #[test]
    fn supervision_flags_parse() {
        let f = parse_flags(&argv(&["--deadline-secs", "30", "--resume", "--fail-fast"]))
            .expect("parses");
        assert_eq!(f.deadline_secs, Some(30));
        assert!(f.resume);
        assert!(f.fail_fast);
        let defaults = parse_flags(&[]).expect("parses");
        assert_eq!(defaults.deadline_secs, None);
        assert!(!defaults.resume);
        assert!(!defaults.fail_fast);
        assert!(parse_flags(&argv(&["--deadline-secs"])).is_err());
    }

    #[test]
    fn fail_fast_flag_selects_the_quorum_policy() {
        let strict = parse_flags(&argv(&["--fail-fast"])).expect("parses");
        assert_eq!(pipeline_config(&strict).quorum, QuorumPolicy::FailFast);
        let lenient = parse_flags(&[]).expect("parses");
        assert_eq!(
            pipeline_config(&lenient).quorum,
            QuorumPolicy::MinBenchmarks(1)
        );
    }

    #[test]
    fn expired_campaign_deadline_suggests_resume() {
        let err = dispatch(&argv(&["campaign", "lu", "--deadline-secs", "0"]))
            .expect_err("an already-expired deadline interrupts the campaign");
        let msg = err.to_string();
        assert!(msg.contains("deadline exceeded"), "{msg}");
        assert!(msg.contains("--resume"), "{msg}");
    }

    #[test]
    fn inspection_commands_succeed() {
        dispatch(&argv(&["list"])).expect("list");
        dispatch(&argv(&["disasm", "lu"])).expect("disasm");
        dispatch(&argv(&["graph", "lu", "--stride", "32"])).expect("graph");
    }

    #[test]
    fn serve_and_query_argument_errors() {
        assert!(dispatch(&argv(&["serve"])).is_err(), "serve needs a model");
        assert!(
            dispatch(&argv(&["query"])).is_err(),
            "query needs an address"
        );
        // A predict query without a benchmark name and without a control
        // flag is rejected before any connection is attempted.
        let err = dispatch(&argv(&["query", "127.0.0.1:6", "--ping"]));
        assert!(err.is_err(), "nobody listens on a reserved port");
    }

    #[test]
    fn serve_flags_parse() {
        let f = parse_flags(&argv(&[
            "--addr",
            "127.0.0.1:9999",
            "--workers",
            "3",
            "--quick",
        ]))
        .expect("parses");
        assert_eq!(f.addr, "127.0.0.1:9999");
        assert_eq!(f.workers, 3);
        assert!(f.quick);
        assert!(parse_flags(&argv(&["--addr"])).is_err());
        let defaults = parse_flags(&[]).expect("parses");
        assert_eq!(defaults.workers, 8);
        assert!(!defaults.quick);
    }

    #[test]
    fn quick_flag_selects_the_subsampled_config() {
        let quick = parse_flags(&argv(&["--quick", "--stride", "16"])).expect("parses");
        let config = pipeline_config(&quick);
        assert_eq!(config.sage.epochs, PipelineConfig::quick_test().sage.epochs);
        assert_eq!(config.bit_stride, 16);
        let full = parse_flags(&[]).expect("parses");
        assert_eq!(
            pipeline_config(&full).sage.epochs,
            PipelineConfig::default().sage.epochs
        );
    }

    #[test]
    fn budget_argument_errors_and_flags() {
        assert!(
            dispatch(&argv(&["budget"])).is_err(),
            "budget needs an address"
        );
        assert!(
            dispatch(&argv(&["budget", "127.0.0.1:6"])).is_err(),
            "budget needs a benchmark"
        );
        // An unknown benchmark is rejected before any connection attempt.
        assert!(dispatch(&argv(&["budget", "127.0.0.1:6", "nonexistent"])).is_err());
        let f = parse_flags(&argv(&["--overhead-pct", "12"])).expect("parses");
        assert_eq!(f.overhead_pct, 12);
        let defaults = parse_flags(&[]).expect("parses");
        assert_eq!(defaults.overhead_pct, 5);
        assert!(parse_flags(&argv(&["--overhead-pct"])).is_err());
        assert!(parse_flags(&argv(&["--overhead-pct", "lots"])).is_err());
    }

    #[test]
    fn campaign_fabric_argument_errors() {
        assert!(
            dispatch(&argv(&["campaign", "coordinate"])).is_err(),
            "coordinate needs a benchmark"
        );
        assert!(
            dispatch(&argv(&["campaign", "coordinate", "nonexistent"])).is_err(),
            "unknown benchmark rejected before binding"
        );
        assert!(
            dispatch(&argv(&["campaign", "worker"])).is_err(),
            "worker needs --connect"
        );
        // A worker pointed at a dead address fails with a transport error,
        // not a hang or a panic.
        assert!(dispatch(&argv(&["campaign", "worker", "--connect", "127.0.0.1:6"])).is_err());
    }

    #[test]
    fn fabric_flags_parse() {
        let f = parse_flags(&argv(&[
            "--workers-listen",
            "127.0.0.1:7100",
            "--chunk",
            "16",
            "--lease-ms",
            "750",
            "--checkpoint-interval",
            "128",
            "--out",
            "truth.bin",
        ]))
        .expect("parses");
        assert_eq!(f.workers_listen, "127.0.0.1:7100");
        assert_eq!(f.chunk, 16);
        assert_eq!(f.lease_ms, 750);
        assert_eq!(f.checkpoint_interval, 128);
        assert_eq!(f.out.as_deref(), Some("truth.bin"));
        let defaults = parse_flags(&[]).expect("parses");
        assert_eq!(defaults.chunk, 64);
        assert_eq!(defaults.lease_ms, 5000);
        assert!(defaults.connect.is_none());
        assert!(parse_flags(&argv(&["--connect"])).is_err());
    }

    #[test]
    fn serve_rejects_bad_model_files() {
        let path = std::env::temp_dir().join("glaive-cli-bad-serve.model");
        std::fs::write(&path, b"not a model either").expect("write");
        assert!(dispatch(&argv(&["serve", path.to_str().expect("utf8")])).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn apply_rejects_bad_model_files() {
        let path = std::env::temp_dir().join("glaive-cli-bad.model");
        std::fs::write(&path, b"definitely not a model").expect("write");
        let err = dispatch(&argv(&["apply", path.to_str().expect("utf8"), "lu"]));
        assert!(err.is_err());
        let _ = std::fs::remove_file(&path);
    }
}
