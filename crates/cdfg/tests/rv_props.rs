//! Property tests for CDFG construction over ISA-B ([`RvIsa`]) programs:
//! the same invariants `props.rs` checks for ISA-A must hold for the second
//! backend — every edge justified by the static analyses, adjacency views
//! mutually consistent, node counts exactly (slots × sampled bits) — both
//! on randomly generated programs and on the real `rv_suite` kernels the
//! cross-ISA experiment evaluates.

use glaive_bench_suite::rv_suite;
use glaive_cdfg::analysis::{control_deps, def_use_chains, memory_deps};
use glaive_cdfg::{Cdfg, CdfgConfig};
use glaive_isa::{Isa, OperandSlot, Program, Reg, RvAluOp, RvAsm, RvBranchCond, RvImmOp, RvIsa};

const CASES: u64 = 32;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn body(&mut self, max_len: u64) -> Vec<(u8, u8, u8, u8)> {
        (0..self.below(max_len))
            .map(|_| {
                (
                    self.next() as u8,
                    self.next() as u8,
                    self.next() as u8,
                    self.next() as u8,
                )
            })
            .collect()
    }
}

/// Generates a structurally valid random ISA-B program: a prologue of
/// constant loads, a body of ALU / memory ops / forward branches, and an
/// `ecall`/`ebreak` epilogue. All branches jump forward, so dataflow is
/// single-pass. `x0` is used as the (hardwired-zero) memory base.
fn build_program(body: &[(u8, u8, u8, u8)]) -> Program<RvIsa> {
    let mut asm = RvAsm::new("rv_prop");
    asm.set_mem_words(64);
    let regs = 6u8;
    for r in 0..regs {
        asm.li(Reg(r + 5), i32::from(r) * 3 + 1);
    }
    let end = asm.label();
    for &(kind, a, b, c) in body {
        let ra = Reg(5 + a % regs);
        let rb = Reg(5 + b % regs);
        let rc = Reg(5 + c % regs);
        match kind % 7 {
            0 => {
                asm.alu(RvAluOp::ALL[c as usize % RvAluOp::ALL.len()], ra, rb, rc);
            }
            1 => {
                asm.alu_imm(
                    RvImmOp::ALL[c as usize % RvImmOp::ALL.len()],
                    ra,
                    rb,
                    i32::from(c % 16),
                );
            }
            2 => {
                asm.sd(ra, Reg(0), i32::from(c % 32));
            }
            3 => {
                asm.ld(ra, Reg(0), i32::from(c % 32));
            }
            4 => {
                asm.branch(
                    RvBranchCond::ALL[c as usize % RvBranchCond::ALL.len()],
                    ra,
                    rb,
                    end,
                );
            }
            5 => {
                asm.mv(ra, rb);
            }
            _ => {
                asm.addi(ra, rb, i32::from(c % 8));
            }
        }
    }
    asm.bind(end).mv(Reg(10), Reg(5)).ecall().ebreak();
    asm.finish().expect("labels resolve")
}

/// Checks the full edge-justification invariant on one built graph.
fn assert_edges_justified(p: &Program<RvIsa>, g: &Cdfg) {
    let chains = def_use_chains(p);
    let cdeps = control_deps(p);
    let mdeps = memory_deps(p);
    for to in 0..g.node_count() as u32 {
        let tn = g.nodes()[to as usize];
        for &from in g.preds(to) {
            let fnode = g.nodes()[from as usize];
            let ok_intra = fnode.pc == tn.pc && fnode.slot.is_use() && tn.slot.is_def();
            let ok_data = fnode.slot.is_def()
                && tn.slot.is_use()
                && fnode.bit == tn.bit
                && chains.iter().any(|e| {
                    e.def_pc == fnode.pc
                        && e.use_pc == tn.pc
                        && OperandSlot::Use(e.use_slot) == tn.slot
                });
            let ok_control = fnode.bit == tn.bit && cdeps.contains(&(fnode.pc, tn.pc));
            let ok_memory = fnode.bit == tn.bit
                && fnode.slot == OperandSlot::Use(0)
                && tn.slot == OperandSlot::Def(0)
                && mdeps.contains(&(fnode.pc, tn.pc));
            assert!(
                ok_intra || ok_data || ok_control || ok_memory,
                "unjustified edge {fnode:?} -> {tn:?}"
            );
        }
    }
}

/// Checks that pred/succ adjacency views agree on one built graph.
fn assert_adjacency_agrees(g: &Cdfg) {
    for v in 0..g.node_count() as u32 {
        for &u in g.preds(v) {
            assert!(g.succs(u).contains(&v));
        }
        for &w in g.succs(v) {
            assert!(g.preds(w).contains(&v));
        }
    }
}

/// Node count is exactly (operand slots × sampled bits) for ISA-B too.
#[test]
fn node_count_matches_slots() {
    let mut rng = Rng(31);
    for _ in 0..CASES {
        let p = build_program(&rng.body(25));
        let stride = [8usize, 16, 32, 64][rng.below(4) as usize];
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: stride });
        let slots: usize = p
            .instrs()
            .iter()
            .map(|i| RvIsa::uses(i).len() + RvIsa::defs(i).len())
            .sum();
        assert_eq!(g.node_count(), slots * (64 / stride));
    }
}

/// Every inter-instruction edge is justified by one of the analyses.
#[test]
fn edges_are_justified() {
    let mut rng = Rng(32);
    for _ in 0..CASES {
        let p = build_program(&rng.body(20));
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 32 });
        assert_edges_justified(&p, &g);
    }
}

/// pred/succ adjacency views are mutually consistent.
#[test]
fn adjacency_views_agree() {
    let mut rng = Rng(33);
    for _ in 0..CASES {
        let p = build_program(&rng.body(20));
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 16 });
        assert_adjacency_agrees(&g);
    }
}

/// With only forward branches, def-use chains never flow backwards.
#[test]
fn forward_only_programs_have_forward_dataflow() {
    let mut rng = Rng(34);
    for _ in 0..CASES {
        let p = build_program(&rng.body(20));
        for e in def_use_chains(&p) {
            assert!(
                e.def_pc < e.use_pc,
                "backward chain {} -> {}",
                e.def_pc,
                e.use_pc
            );
        }
    }
}

/// The real cross-ISA evaluation kernels (loops and all) satisfy every
/// graph invariant at every bit stride the pipeline uses.
#[test]
fn rv_suite_kernels_satisfy_all_invariants() {
    for k in rv_suite(7) {
        for stride in [8usize, 16] {
            let g = Cdfg::build(&k.program, &CdfgConfig { bit_stride: stride });
            let slots: usize = k
                .program
                .instrs()
                .iter()
                .map(|i| RvIsa::uses(i).len() + RvIsa::defs(i).len())
                .sum();
            assert_eq!(g.node_count(), slots * (64 / stride), "{}", k.name);
            assert!(g.node_count() > 0, "{} produced an empty graph", k.name);
            assert_edges_justified(&k.program, &g);
            assert_adjacency_agrees(&g);
        }
    }
}
