//! Property tests for CDFG construction over randomly generated programs:
//! every edge must be justified by the static analyses, and graph structure
//! must respect the paper's construction rules. Cases come from a
//! deterministic inline RNG so the suite builds offline with no external
//! crates.

use glaive_cdfg::analysis::{control_deps, def_use_chains, memory_deps};
use glaive_cdfg::{Cdfg, CdfgConfig};
use glaive_isa::{AluOp, Asm, BranchCond, OperandSlot, Program, Reg};

const CASES: u64 = 48;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn body(&mut self, max_len: u64) -> Vec<(u8, u8, u8, u8)> {
        (0..self.below(max_len))
            .map(|_| {
                (
                    self.next() as u8,
                    self.next() as u8,
                    self.next() as u8,
                    self.next() as u8,
                )
            })
            .collect()
    }
}

/// Generates a structurally valid random program: a prologue of loads, a
/// body of ALU ops / memory ops / forward branches, and an epilogue of
/// outs. All branches jump forward to the epilogue, so programs terminate.
fn build_program(body: &[(u8, u8, u8, u8)]) -> Program {
    let mut asm = Asm::new("prop");
    asm.set_mem_words(64);
    let regs = 6u8;
    for r in 0..regs {
        asm.li(Reg(r + 1), (r as i64 + 1) * 3);
    }
    let end = asm.label();
    for &(kind, a, b, c) in body {
        let ra = Reg(1 + a % regs);
        let rb = Reg(1 + b % regs);
        let rc = Reg(1 + c % regs);
        match kind % 6 {
            0 => {
                asm.alu(AluOp::ALL[(kind as usize / 6) % 9], ra, rb, rc);
            }
            1 => {
                asm.alu_imm(AluOp::Add, ra, rb, c as i64);
            }
            2 => {
                asm.store(ra, Reg(31), (c % 32) as i64);
            }
            3 => {
                asm.load(ra, Reg(31), (c % 32) as i64);
            }
            4 => {
                asm.branch(BranchCond::Eq, ra, rb, end);
            }
            _ => {
                asm.mov(ra, rb);
            }
        }
    }
    asm.bind(end);
    for r in 0..regs {
        asm.out(Reg(r + 1));
    }
    asm.halt();
    // Pin r31 (used as a base) by prepending… it is never written, reads 0.
    asm.finish().expect("labels resolve")
}

/// Node count is exactly (operand slots × sampled bits).
#[test]
fn node_count_matches_slots() {
    let mut rng = Rng(21);
    for _ in 0..CASES {
        let p = build_program(&rng.body(30));
        let stride = [8usize, 16, 32, 64][rng.below(4) as usize];
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: stride });
        let slots: usize = p
            .instrs()
            .iter()
            .map(|i| i.uses().len() + i.defs().len())
            .sum();
        assert_eq!(g.node_count(), slots * (64 / stride));
    }
}

/// Every inter-instruction edge is justified by one of the analyses;
/// every intra edge stays within one instruction, sources to dest.
#[test]
fn edges_are_justified() {
    let mut rng = Rng(22);
    for _ in 0..CASES {
        let p = build_program(&rng.body(25));
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 32 });
        let chains = def_use_chains(&p);
        let cdeps = control_deps(&p);
        let mdeps = memory_deps(&p);
        for to in 0..g.node_count() as u32 {
            let tn = g.nodes()[to as usize];
            for &from in g.preds(to) {
                let fnode = g.nodes()[from as usize];
                let ok_intra = fnode.pc == tn.pc && fnode.slot.is_use() && tn.slot.is_def();
                let ok_data = fnode.slot.is_def()
                    && tn.slot.is_use()
                    && fnode.bit == tn.bit
                    && chains.iter().any(|e| {
                        e.def_pc == fnode.pc
                            && e.use_pc == tn.pc
                            && OperandSlot::Use(e.use_slot) == tn.slot
                    });
                let ok_control = fnode.bit == tn.bit && cdeps.contains(&(fnode.pc, tn.pc));
                let ok_memory = fnode.bit == tn.bit
                    && fnode.slot == OperandSlot::Use(0)
                    && tn.slot == OperandSlot::Def(0)
                    && mdeps.contains(&(fnode.pc, tn.pc));
                assert!(
                    ok_intra || ok_data || ok_control || ok_memory,
                    "unjustified edge {fnode:?} -> {tn:?}"
                );
            }
        }
    }
}

/// pred/succ adjacency views are mutually consistent.
#[test]
fn adjacency_views_agree() {
    let mut rng = Rng(23);
    for _ in 0..CASES {
        let p = build_program(&rng.body(25));
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 16 });
        for v in 0..g.node_count() as u32 {
            for &u in g.preds(v) {
                assert!(g.succs(u).contains(&v));
            }
            for &w in g.succs(v) {
                assert!(g.preds(w).contains(&v));
            }
        }
    }
}

/// Def-use chains never flow backwards against single-pass order unless
/// a loop exists; with only forward branches, def_pc < use_pc.
#[test]
fn forward_only_programs_have_forward_dataflow() {
    let mut rng = Rng(24);
    for _ in 0..CASES {
        let p = build_program(&rng.body(25));
        for e in def_use_chains(&p) {
            assert!(
                e.def_pc < e.use_pc,
                "backward chain {} -> {}",
                e.def_pc,
                e.use_pc
            );
        }
    }
}
