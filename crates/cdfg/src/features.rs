//! Node feature vectors (Table I of the paper).
//!
//! Bit-level features (for GLAIVE and MLP-BIT): opcode one-hot, opcode-type
//! one-hot, register name one-hot, bit location one-hot, register type
//! (int/float), register location (src/dst). The auxiliary rows of Table I
//! (static PC, dynamic instance) are pre/post-processing identifiers, not
//! model inputs, and correspond to our node ids and campaign instances.
//!
//! Instruction-level features (for RF-INST and SVM-INST): the opcode and
//! opcode-type one-hots only, as in the paper.

use glaive_isa::{Isa, Opcode, OpcodeClass, Program, NUM_REGS, WORD_BITS};

use crate::graph::{BitNode, Cdfg};

/// Width of a bit-level node feature vector.
pub const FEATURE_DIM: usize =
    Opcode::COUNT + OpcodeClass::ALL.len() + NUM_REGS + WORD_BITS + 2 + 2;

/// Width of an instruction-level feature vector.
pub const INSTR_FEATURE_DIM: usize = Opcode::COUNT + OpcodeClass::ALL.len();

impl Cdfg {
    /// Writes the feature vector of one node into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != FEATURE_DIM`.
    pub fn node_features_into(&self, node: &BitNode, out: &mut [f32]) {
        assert_eq!(out.len(), FEATURE_DIM, "feature buffer has wrong length");
        out.fill(0.0);
        let mut base = 0;
        out[base + node.opcode_index as usize] = 1.0;
        base += Opcode::COUNT;
        out[base + node.class.index()] = 1.0;
        base += OpcodeClass::ALL.len();
        out[base + node.reg.index()] = 1.0;
        base += NUM_REGS;
        out[base + node.bit as usize] = 1.0;
        base += WORD_BITS;
        // Register type: [int, float].
        out[base + usize::from(node.is_float)] = 1.0;
        base += 2;
        // Register location: [src, dst].
        out[base + usize::from(node.slot.is_def())] = 1.0;
    }

    /// The dense row-major feature matrix of all nodes
    /// (`node_count × FEATURE_DIM`).
    pub fn feature_matrix(&self) -> Vec<f32> {
        let mut m = vec![0.0f32; self.node_count() * FEATURE_DIM];
        for (i, node) in self.nodes().iter().enumerate() {
            self.node_features_into(node, &mut m[i * FEATURE_DIM..(i + 1) * FEATURE_DIM]);
        }
        m
    }
}

/// Instruction-level feature matrix (`program.len() × INSTR_FEATURE_DIM`),
/// row-major: opcode one-hot followed by opcode-class one-hot, using the
/// canonical opcode vocabulary for any instruction-set backend.
pub fn instruction_features<I: Isa>(program: &Program<I>) -> Vec<f32> {
    let mut m = vec![0.0f32; program.len() * INSTR_FEATURE_DIM];
    for (pc, instr) in program.instrs().iter().enumerate() {
        let row = &mut m[pc * INSTR_FEATURE_DIM..(pc + 1) * INSTR_FEATURE_DIM];
        row[I::opcode_index(instr)] = 1.0;
        row[Opcode::COUNT + I::opcode_class(instr).index()] = 1.0;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CdfgConfig;
    use glaive_isa::{AluOp, Asm, OperandSlot, Reg};

    fn program() -> Program {
        let mut asm = Asm::new("t");
        asm.li(Reg(1), 1); // 0
        asm.fpu(glaive_isa::FpuOp::FAdd, Reg(2), Reg(1), Reg(1)); // 1
        asm.alu(AluOp::Add, Reg(3), Reg(2), Reg(2)); // 2
        asm.out(Reg(3)); // 3
        asm.halt();
        asm.finish().expect("resolves")
    }

    #[test]
    fn feature_vector_has_exactly_six_hot_groups() {
        let p = program();
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 16 });
        let mut buf = vec![0.0f32; FEATURE_DIM];
        for node in g.nodes() {
            g.node_features_into(node, &mut buf);
            let ones = buf.iter().filter(|&&x| x == 1.0).count();
            let zeros = buf.iter().filter(|&&x| x == 0.0).count();
            assert_eq!(ones, 6, "six one-hot groups each contribute one 1");
            assert_eq!(ones + zeros, FEATURE_DIM);
        }
    }

    #[test]
    fn float_and_location_flags_are_correct() {
        let p = program();
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 64 });
        let mut buf = vec![0.0f32; FEATURE_DIM];
        let float_use = g.node_id(1, OperandSlot::Use(0), 0).expect("exists");
        g.node_features_into(&g.nodes()[float_use as usize], &mut buf);
        let base = Opcode::COUNT + OpcodeClass::ALL.len() + NUM_REGS + WORD_BITS;
        assert_eq!(buf[base + 1], 1.0, "fadd operand is float-typed");
        assert_eq!(buf[base + 2], 1.0, "use slot is a source");

        let int_def = g.node_id(2, OperandSlot::Def(0), 0).expect("exists");
        g.node_features_into(&g.nodes()[int_def as usize], &mut buf);
        assert_eq!(buf[base], 1.0, "add operand is int-typed");
        assert_eq!(buf[base + 3], 1.0, "def slot is a destination");
    }

    #[test]
    fn bit_location_one_hot_matches_bit() {
        let p = program();
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 8 });
        let mut buf = vec![0.0f32; FEATURE_DIM];
        let node = g.node_id(0, OperandSlot::Def(0), 48).expect("exists");
        g.node_features_into(&g.nodes()[node as usize], &mut buf);
        let base = Opcode::COUNT + OpcodeClass::ALL.len() + NUM_REGS;
        assert_eq!(buf[base + 48], 1.0);
        assert_eq!(buf[base + 47], 0.0);
    }

    #[test]
    fn feature_matrix_is_row_major() {
        let p = program();
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 32 });
        let m = g.feature_matrix();
        assert_eq!(m.len(), g.node_count() * FEATURE_DIM);
        let mut buf = vec![0.0f32; FEATURE_DIM];
        g.node_features_into(&g.nodes()[3], &mut buf);
        assert_eq!(&m[3 * FEATURE_DIM..4 * FEATURE_DIM], &buf[..]);
    }

    #[test]
    fn instruction_features_shape_and_content() {
        let p = program();
        let m = instruction_features(&p);
        assert_eq!(m.len(), p.len() * INSTR_FEATURE_DIM);
        for pc in 0..p.len() {
            let row = &m[pc * INSTR_FEATURE_DIM..(pc + 1) * INSTR_FEATURE_DIM];
            assert_eq!(row.iter().filter(|&&x| x == 1.0).count(), 2);
        }
        // Row 3 is the out instruction.
        let row = &m[3 * INSTR_FEATURE_DIM..4 * INSTR_FEATURE_DIM];
        assert_eq!(row[Opcode::Out.index()], 1.0);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_buffer_length_panics() {
        let p = program();
        let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 64 });
        let mut buf = vec![0.0f32; FEATURE_DIM - 1];
        g.node_features_into(&g.nodes()[0], &mut buf);
    }
}
