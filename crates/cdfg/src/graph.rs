use std::collections::HashMap;

use glaive_graph::{CsrGraph, EdgeKind};
use glaive_isa::{Isa, OpcodeClass, OperandSlot, Program, Reg, WORD_BITS};

use crate::analysis::{control_deps, def_use_chains, memory_deps};

/// Construction parameters for the bit-level CDFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CdfgConfig {
    /// Sample every `bit_stride`-th bit position of each operand register
    /// (1 = all 64 bits, the paper's setting; 64 = word-level ablation).
    /// Must match the fault campaign's stride so labels join onto nodes.
    pub bit_stride: usize,
}

impl Default for CdfgConfig {
    fn default() -> Self {
        CdfgConfig { bit_stride: 8 }
    }
}

impl CdfgConfig {
    /// A config with an untrusted (wire- or user-supplied) stride: `None`
    /// when the stride falls outside `1..=WORD_BITS`, where
    /// [`Cdfg::build`] would panic. Serving layers use this to turn a bad
    /// request into a typed rejection instead of a worker panic.
    pub fn try_with_stride(bit_stride: usize) -> Option<CdfgConfig> {
        (1..=WORD_BITS)
            .contains(&bit_stride)
            .then_some(CdfgConfig { bit_stride })
    }
}

/// One node of the bit-level CDFG: bit `bit` of the register in operand
/// `slot` of instruction `pc`.
///
/// Nodes carry only the *portable* feature vocabulary (canonical opcode
/// index, opcode class, register, bit, float flag) rather than any
/// backend's concrete opcode type — a CDFG built from an ISA-B program is
/// indistinguishable in shape from an ISA-A one, which is what makes
/// cross-ISA model transfer possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitNode {
    /// Static instruction index.
    pub pc: usize,
    /// Operand slot within the instruction.
    pub slot: OperandSlot,
    /// Bit position within the operand register.
    pub bit: u8,
    /// The architectural register in that slot.
    pub reg: Reg,
    /// Index into the canonical opcode vocabulary
    /// ([`Isa::opcode_index`]; `< Opcode::COUNT`).
    pub opcode_index: u16,
    /// The instruction's coarse class in the shared Table-I taxonomy.
    pub class: OpcodeClass,
    /// Whether the instruction interprets registers as `f64`.
    pub is_float: bool,
}

/// Per-kind edge counts, before de-duplication (a node pair connected by
/// both a data and a memory dependence counts once in the adjacency but in
/// both stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Intra-instruction source-bit → destination-bit edges.
    pub intra: usize,
    /// Inter-instruction register def-use (`D_D` / RR) edges.
    pub data: usize,
    /// Control-dependence (`D_C`) edges.
    pub control: usize,
    /// Memory-dependence (`D_M`) edges.
    pub memory: usize,
}

impl EdgeStats {
    /// Total edges across kinds (with multiplicity).
    pub fn total(&self) -> usize {
        self.intra + self.data + self.control + self.memory
    }
}

/// The bit-level control–data flow graph of one program.
///
/// Edges point in the direction of error propagation (producer → consumer);
/// the GNN aggregates over `preds`, i.e. against edge direction, following
/// Eq. (2) of the paper.
///
/// Both directions are stored as flat, kind-tagged CSR adjacencies
/// ([`CsrGraph`]) built directly from the analysis edge stream — no
/// intermediate per-node `Vec`s. [`Cdfg::preds`]/[`Cdfg::succs`] are slice
/// views into those arrays, and [`Cdfg::preds_csr`] hands the whole
/// predecessor graph to the GNN as the workspace's shared graph currency.
#[derive(Debug, Clone)]
pub struct Cdfg {
    config: CdfgConfig,
    nodes: Vec<BitNode>,
    preds: CsrGraph,
    succs: CsrGraph,
    index: HashMap<(usize, OperandSlot, u8), u32>,
    stats: EdgeStats,
}

impl Cdfg {
    /// Builds the bit-level CDFG of `program`, for any instruction-set
    /// backend. The resulting graph carries only portable node features —
    /// the ISA parameter does not survive into the `Cdfg` type.
    ///
    /// # Panics
    ///
    /// Panics if `config.bit_stride` is 0 or greater than the word width.
    pub fn build<I: Isa>(program: &Program<I>, config: &CdfgConfig) -> Cdfg {
        assert!(
            (1..=WORD_BITS).contains(&config.bit_stride),
            "bit_stride must be in 1..={WORD_BITS}"
        );
        let bits: Vec<u8> = (0..WORD_BITS)
            .step_by(config.bit_stride)
            .map(|b| b as u8)
            .collect();

        // Nodes: one per (pc, slot, sampled bit).
        let mut nodes = Vec::new();
        let mut index = HashMap::new();
        for (pc, instr) in program.instrs().iter().enumerate() {
            let opcode_index = I::opcode_index(instr) as u16;
            let class = I::opcode_class(instr);
            let is_float = I::is_float(instr);
            let mut push = |slot: OperandSlot, reg: Reg| {
                for &bit in &bits {
                    index.insert((pc, slot, bit), nodes.len() as u32);
                    nodes.push(BitNode {
                        pc,
                        slot,
                        bit,
                        reg,
                        opcode_index,
                        class,
                        is_float,
                    });
                }
            };
            for (i, &reg) in I::uses(instr).iter().enumerate() {
                push(OperandSlot::Use(i), reg);
            }
            for (i, &reg) in I::defs(instr).iter().enumerate() {
                push(OperandSlot::Def(i), reg);
            }
        }

        // One flat producer → consumer edge stream, tagged with the
        // dependence kind that justified each edge. Stats count the stream
        // with multiplicity; the CSR build collapses multi-kind pairs.
        let mut edges: Vec<(u32, u32, u8)> = Vec::new();
        let mut stats = EdgeStats::default();

        // 1. Intra-instruction: every source bit → every destination bit.
        for (pc, instr) in program.instrs().iter().enumerate() {
            if I::defs(instr).is_empty() {
                continue;
            }
            for (si, _) in I::uses(instr).iter().enumerate() {
                for &sb in &bits {
                    let from = index[&(pc, OperandSlot::Use(si), sb)];
                    for &db in &bits {
                        let to = index[&(pc, OperandSlot::Def(0), db)];
                        edges.push((from, to, EdgeKind::Intra.bit()));
                        stats.intra += 1;
                    }
                }
            }
        }

        // 2. Register def-use (D_D): producer def bit k → consumer use bit k.
        for edge in def_use_chains(program) {
            for &b in &bits {
                let from = index[&(edge.def_pc, OperandSlot::Def(0), b)];
                let to = index[&(edge.use_pc, OperandSlot::Use(edge.use_slot), b)];
                edges.push((from, to, EdgeKind::Data.bit()));
                stats.data += 1;
            }
        }

        // 3. Control dependence (D_C): branch condition bits → dependent
        //    instruction's destination bits (or its source bits if it
        //    defines nothing, e.g. stores and outputs).
        for (branch_pc, dep_pc) in control_deps(program) {
            let branch = &program.instrs()[branch_pc];
            let dep = &program.instrs()[dep_pc];
            let dep_slots: Vec<OperandSlot> = if I::defs(dep).is_empty() {
                (0..I::uses(dep).len()).map(OperandSlot::Use).collect()
            } else {
                vec![OperandSlot::Def(0)]
            };
            for (ui, _) in I::uses(branch).iter().enumerate() {
                for &b in &bits {
                    let from = index[&(branch_pc, OperandSlot::Use(ui), b)];
                    for &slot in &dep_slots {
                        let to = index[&(dep_pc, slot, b)];
                        edges.push((from, to, EdgeKind::Control.bit()));
                        stats.control += 1;
                    }
                }
            }
        }

        // 4. Memory dependence (D_M): stored value bits → loaded value bits.
        for (store_pc, load_pc) in memory_deps(program) {
            for &b in &bits {
                let from = index[&(store_pc, OperandSlot::Use(0), b)];
                let to = index[&(load_pc, OperandSlot::Def(0), b)];
                edges.push((from, to, EdgeKind::Memory.bit()));
                stats.memory += 1;
            }
        }

        // Both directions as CSR: sort + merge replaces the old per-list
        // sort_unstable + dedup, so row contents are identical to the
        // nested-Vec representation this replaced (sorted, duplicate-free,
        // multi-kind pairs collapsed to one edge with a merged kind mask).
        let reversed: Vec<(u32, u32, u8)> =
            edges.iter().map(|&(from, to, k)| (to, from, k)).collect();
        let preds = CsrGraph::from_tagged(nodes.len(), reversed);
        let succs = CsrGraph::from_tagged(nodes.len(), edges);

        Cdfg {
            config: *config,
            nodes,
            preds,
            succs,
            index,
            stats,
        }
    }

    /// The construction configuration.
    pub fn config(&self) -> &CdfgConfig {
        &self.config
    }

    /// Number of bit nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes, indexed by node id.
    pub fn nodes(&self) -> &[BitNode] {
        &self.nodes
    }

    /// Predecessors (error-propagation sources) of a node, as a sorted
    /// slice view into the flat predecessor CSR.
    pub fn preds(&self, id: u32) -> &[u32] {
        self.preds.neighbors(id as usize)
    }

    /// Successors of a node, as a sorted slice view into the flat
    /// successor CSR.
    pub fn succs(&self, id: u32) -> &[u32] {
        self.succs.neighbors(id as usize)
    }

    /// The predecessor-direction graph — GLAIVE's aggregation
    /// neighbourhood, with per-edge dependence-kind tags.
    pub fn preds_csr(&self) -> &CsrGraph {
        &self.preds
    }

    /// The successor-direction graph.
    pub fn succs_csr(&self) -> &CsrGraph {
        &self.succs
    }

    /// Looks up the node id of `(pc, slot, bit)`, if that bit was sampled.
    pub fn node_id(&self, pc: usize, slot: OperandSlot, bit: u8) -> Option<u32> {
        self.index.get(&(pc, slot, bit)).copied()
    }

    /// Pre-deduplication edge statistics by dependence kind.
    pub fn edge_stats(&self) -> &EdgeStats {
        &self.stats
    }

    /// Total directed edges after de-duplication.
    pub fn edge_count(&self) -> usize {
        self.preds.edge_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, BranchCond};

    fn cfg(stride: usize) -> CdfgConfig {
        CdfgConfig { bit_stride: stride }
    }

    fn add_program() -> Program {
        let mut asm = Asm::new("add");
        asm.li(Reg(1), 3); // 0
        asm.alu(AluOp::Add, Reg(2), Reg(1), Reg(1)); // 1
        asm.out(Reg(2)); // 2
        asm.halt(); // 3
        asm.finish().expect("resolves")
    }

    #[test]
    fn node_counts_scale_with_stride() {
        let p = add_program();
        // Operand slots: li 1 def; add 2 use + 1 def; out 1 use = 5 slots.
        let g64 = Cdfg::build(&p, &cfg(1));
        assert_eq!(g64.node_count(), 5 * 64);
        let g8 = Cdfg::build(&p, &cfg(8));
        assert_eq!(g8.node_count(), 5 * 8);
        let word = Cdfg::build(&p, &cfg(64));
        assert_eq!(word.node_count(), 5);
    }

    #[test]
    fn intra_edges_are_full_bipartite() {
        let p = add_program();
        let g = Cdfg::build(&p, &cfg(16)); // 4 bits sampled
                                           // The add def bit 0 has predecessors: all 4 bits × 2 use slots
                                           // (intra) + def-use from li (bitwise, only bit 0).
        let def0 = g.node_id(1, OperandSlot::Def(0), 0).expect("exists");
        assert_eq!(g.preds(def0).len(), 8);
    }

    #[test]
    fn def_use_edges_are_bitwise() {
        let p = add_program();
        let g = Cdfg::build(&p, &cfg(16));
        // li def bit 16 → add use0 bit 16 and use1 bit 16, plus no others.
        let li16 = g.node_id(0, OperandSlot::Def(0), 16).expect("exists");
        let succ: Vec<u32> = g.succs(li16).to_vec();
        let want_a = g.node_id(1, OperandSlot::Use(0), 16).expect("exists");
        let want_b = g.node_id(1, OperandSlot::Use(1), 16).expect("exists");
        assert!(succ.contains(&want_a));
        assert!(succ.contains(&want_b));
        // Not to other bit positions.
        let not = g.node_id(1, OperandSlot::Use(0), 32).expect("exists");
        assert!(!succ.contains(&not));
    }

    #[test]
    fn control_edges_guard_dependent_instructions() {
        let mut asm = Asm::new("if");
        let end = asm.label();
        asm.li(Reg(1), 0); // 0
        asm.branch(BranchCond::Ne, Reg(1), Reg(1), end); // 1
        asm.li(Reg(2), 1); // 2 guarded
        asm.bind(end);
        asm.halt(); // 3
        let p = asm.finish().expect("resolves");
        let g = Cdfg::build(&p, &cfg(32));
        let branch_use = g.node_id(1, OperandSlot::Use(0), 0).expect("exists");
        let guarded_def = g.node_id(2, OperandSlot::Def(0), 0).expect("exists");
        assert!(g.succs(branch_use).contains(&guarded_def));
        assert!(g.edge_stats().control > 0);
    }

    #[test]
    fn memory_edges_flow_store_to_load() {
        let mut asm = Asm::new("mem");
        asm.set_mem_words(8);
        asm.li(Reg(1), 0); // 0
        asm.li(Reg(2), 42); // 1
        asm.store(Reg(2), Reg(1), 3); // 2
        asm.load(Reg(3), Reg(1), 3); // 3
        asm.out(Reg(3)); // 4
        asm.halt();
        let p = asm.finish().expect("resolves");
        let g = Cdfg::build(&p, &cfg(32));
        let store_val = g.node_id(2, OperandSlot::Use(0), 32).expect("exists");
        let load_def = g.node_id(3, OperandSlot::Def(0), 32).expect("exists");
        assert!(g.succs(store_val).contains(&load_def));
        assert!(g.edge_stats().memory > 0);
    }

    #[test]
    fn adjacency_is_deduplicated_and_consistent() {
        let p = add_program();
        let g = Cdfg::build(&p, &cfg(8));
        g.preds_csr().check_invariants().expect("pred CSR valid");
        g.succs_csr().check_invariants().expect("succ CSR valid");
        let mut pred_edge_count = 0;
        for id in 0..g.node_count() as u32 {
            let preds = g.preds(id);
            pred_edge_count += preds.len();
            let mut sorted = preds.to_vec();
            sorted.dedup();
            assert_eq!(sorted.len(), preds.len(), "duplicate predecessor");
            for &from in preds {
                assert!(g.succs(from).contains(&id), "pred/succ mismatch");
            }
        }
        assert_eq!(pred_edge_count, g.edge_count());
        assert_eq!(g.succs_csr().edge_count(), g.edge_count());
    }

    #[test]
    #[should_panic(expected = "bit_stride")]
    fn zero_stride_rejected() {
        Cdfg::build(&add_program(), &cfg(0));
    }

    #[test]
    fn try_with_stride_validates_the_range() {
        assert!(CdfgConfig::try_with_stride(0).is_none());
        assert!(CdfgConfig::try_with_stride(WORD_BITS + 1).is_none());
        assert_eq!(
            CdfgConfig::try_with_stride(8),
            Some(CdfgConfig { bit_stride: 8 })
        );
        assert_eq!(
            CdfgConfig::try_with_stride(WORD_BITS),
            Some(CdfgConfig {
                bit_stride: WORD_BITS
            })
        );
    }

    #[test]
    fn nodes_carry_instruction_metadata() {
        let p = add_program();
        let g = Cdfg::build(&p, &cfg(64));
        let out_use = g.node_id(2, OperandSlot::Use(0), 0).expect("exists");
        let node = g.nodes()[out_use as usize];
        assert_eq!(node.reg, Reg(2));
        assert_eq!(node.opcode_index, glaive_isa::Opcode::Out.index() as u16);
        assert_eq!(node.class, OpcodeClass::Output);
        assert!(!node.is_float);
    }

    #[test]
    fn kind_tags_partition_the_adjacency() {
        let mut asm = Asm::new("kinds");
        asm.set_mem_words(8);
        let end = asm.label();
        asm.li(Reg(1), 0); // 0
        asm.li(Reg(2), 42); // 1
        asm.store(Reg(2), Reg(1), 3); // 2
        asm.branch(BranchCond::Ne, Reg(1), Reg(2), end); // 3
        asm.load(Reg(3), Reg(1), 3); // 4 guarded
        asm.bind(end);
        asm.out(Reg(3)); // 5
        asm.halt();
        let p = asm.finish().expect("resolves");
        let g = Cdfg::build(&p, &cfg(32));
        let [intra, data, control, memory] = g.preds_csr().kind_counts();
        assert!(intra > 0 && data > 0 && control > 0 && memory > 0);
        // A kind-filtered view selects exactly the edges of that kind and
        // keeps every one of them, without re-running the analyses.
        let mem_only = g.preds_csr().filtered(glaive_graph::EdgeKind::Memory.bit());
        mem_only.check_invariants().expect("valid");
        assert_eq!(mem_only.edge_count(), memory);
        let load_def = g.node_id(4, OperandSlot::Def(0), 0).expect("exists");
        let store_val = g.node_id(2, OperandSlot::Use(0), 0).expect("exists");
        assert!(mem_only.neighbors(load_def as usize).contains(&store_val));
        // Filtering by every kind reproduces the full adjacency.
        let all = g.preds_csr().filtered(glaive_graph::EdgeKind::ALL_MASK);
        assert_eq!(&all, g.preds_csr());
    }

    /// Representation parity: the CSR rows must be byte-identical to the
    /// nested-Vec adjacency the pre-CSR builder produced (push per edge,
    /// then per-list `sort_unstable` + `dedup`).
    #[test]
    fn csr_rows_match_the_legacy_nested_vec_builder() {
        let mut asm = Asm::new("parity");
        asm.set_mem_words(16);
        let end = asm.label();
        asm.li(Reg(1), 5); // 0
        asm.li(Reg(2), 7); // 1
        asm.alu(AluOp::Add, Reg(3), Reg(1), Reg(2)); // 2
        asm.store(Reg(3), Reg(1), 2); // 3
        asm.branch(BranchCond::Eq, Reg(3), Reg(2), end); // 4
        asm.load(Reg(4), Reg(1), 2); // 5 guarded
        asm.alu(AluOp::Mul, Reg(2), Reg(4), Reg(3)); // 6 guarded
        asm.bind(end);
        asm.out(Reg(2)); // 7
        asm.halt();
        let p = asm.finish().expect("resolves");

        for stride in [8usize, 16, 64] {
            let g = Cdfg::build(&p, &cfg(stride));
            let (preds, succs) = legacy_adjacency(&p, &g);
            for id in 0..g.node_count() as u32 {
                assert_eq!(g.preds(id), &preds[id as usize][..], "preds of {id}");
                assert_eq!(g.succs(id), &succs[id as usize][..], "succs of {id}");
            }
        }
    }

    /// The pre-CSR adjacency construction, kept as a test oracle: nested
    /// per-node Vecs filled edge by edge, then sorted and de-duplicated.
    #[allow(clippy::type_complexity)]
    fn legacy_adjacency(p: &Program, g: &Cdfg) -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        let bits: Vec<u8> = (0..WORD_BITS)
            .step_by(g.config().bit_stride)
            .map(|b| b as u8)
            .collect();
        let id = |pc: usize, slot: OperandSlot, bit: u8| g.node_id(pc, slot, bit).expect("node");
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
        let add = |from: u32, to: u32, preds: &mut Vec<Vec<u32>>, succs: &mut Vec<Vec<u32>>| {
            preds[to as usize].push(from);
            succs[from as usize].push(to);
        };
        for (pc, instr) in p.instrs().iter().enumerate() {
            if instr.defs().is_empty() {
                continue;
            }
            for (si, _) in instr.uses().iter().enumerate() {
                for &sb in &bits {
                    for &db in &bits {
                        add(
                            id(pc, OperandSlot::Use(si), sb),
                            id(pc, OperandSlot::Def(0), db),
                            &mut preds,
                            &mut succs,
                        );
                    }
                }
            }
        }
        for e in def_use_chains(p) {
            for &b in &bits {
                add(
                    id(e.def_pc, OperandSlot::Def(0), b),
                    id(e.use_pc, OperandSlot::Use(e.use_slot), b),
                    &mut preds,
                    &mut succs,
                );
            }
        }
        for (branch_pc, dep_pc) in control_deps(p) {
            let branch = &p.instrs()[branch_pc];
            let dep = &p.instrs()[dep_pc];
            let dep_slots: Vec<OperandSlot> = if dep.defs().is_empty() {
                (0..dep.uses().len()).map(OperandSlot::Use).collect()
            } else {
                vec![OperandSlot::Def(0)]
            };
            for (ui, _) in branch.uses().iter().enumerate() {
                for &b in &bits {
                    for &slot in &dep_slots {
                        add(
                            id(branch_pc, OperandSlot::Use(ui), b),
                            id(dep_pc, slot, b),
                            &mut preds,
                            &mut succs,
                        );
                    }
                }
            }
        }
        for (store_pc, load_pc) in memory_deps(p) {
            for &b in &bits {
                add(
                    id(store_pc, OperandSlot::Use(0), b),
                    id(load_pc, OperandSlot::Def(0), b),
                    &mut preds,
                    &mut succs,
                );
            }
        }
        for list in preds.iter_mut().chain(succs.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        (preds, succs)
    }
}
