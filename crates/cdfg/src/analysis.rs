//! Instruction-level static analyses feeding CDFG construction: control-flow
//! graph, reaching definitions (def-use chains), simplified control
//! dependence, and offset-class memory dependence.

use glaive_isa::{Flow, Isa, Program, Reg};

/// Control-flow successors of every instruction. The program-exit successor
/// (index `program.len()`) is omitted.
pub fn cfg_successors<I: Isa>(program: &Program<I>) -> Vec<Vec<usize>> {
    let n = program.len();
    program
        .instrs()
        .iter()
        .enumerate()
        .map(|(pc, instr)| match I::flow(instr) {
            Flow::Halt => Vec::new(),
            Flow::Jump(target) => {
                if target < n {
                    vec![target]
                } else {
                    Vec::new()
                }
            }
            Flow::Branch(target) => {
                let mut s = Vec::new();
                if pc + 1 < n {
                    s.push(pc + 1);
                }
                if target < n && target != pc + 1 {
                    s.push(target);
                }
                s
            }
            Flow::Fallthrough => {
                if pc + 1 < n {
                    vec![pc + 1]
                } else {
                    Vec::new()
                }
            }
        })
        .collect()
}

/// A register def-use chain edge: the value defined at `def_pc` may be read
/// by `use_pc` through register `reg` (use slot `use_slot`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefUse {
    /// Defining instruction.
    pub def_pc: usize,
    /// Consuming instruction.
    pub use_pc: usize,
    /// The register carrying the value.
    pub reg: Reg,
    /// Index into `uses()` of the consuming instruction.
    pub use_slot: usize,
}

/// Computes def-use chains via iterative reaching-definitions dataflow.
pub fn def_use_chains<I: Isa>(program: &Program<I>) -> Vec<DefUse> {
    let n = program.len();
    let succs = cfg_successors(program);
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (pc, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(pc);
        }
    }

    // Enumerate definition sites.
    let mut def_site: Vec<Option<(usize, Reg)>> = Vec::new(); // def id -> (pc, reg)
    let mut defs_at: Vec<Option<usize>> = vec![None; n]; // pc -> def id
    for (pc, instr) in program.instrs().iter().enumerate() {
        if let Some(&reg) = I::defs(instr).first() {
            defs_at[pc] = Some(def_site.len());
            def_site.push(Some((pc, reg)));
        }
    }
    let num_defs = def_site.len();
    let words = num_defs.div_ceil(64);
    // Defs per register, for the kill set.
    let mut defs_of_reg: Vec<Vec<usize>> = vec![Vec::new(); glaive_isa::NUM_REGS];
    for (id, site) in def_site.iter().enumerate() {
        let (_, reg) = site.expect("populated above");
        defs_of_reg[reg.index()].push(id);
    }

    // IN/OUT bitsets over def ids.
    let mut in_sets = vec![vec![0u64; words]; n];
    let mut out_sets = vec![vec![0u64; words]; n];
    let mut changed = true;
    while changed {
        changed = false;
        for pc in 0..n {
            // IN = union of predecessor OUTs.
            let mut inset = vec![0u64; words];
            for &p in &preds[pc] {
                for (w, &bits) in out_sets[p].iter().enumerate() {
                    inset[w] |= bits;
                }
            }
            // OUT = (IN - kill) | gen.
            let mut outset = inset.clone();
            if let Some(def_id) = defs_at[pc] {
                let (_, reg) = def_site[def_id].expect("populated");
                for &k in &defs_of_reg[reg.index()] {
                    outset[k / 64] &= !(1u64 << (k % 64));
                }
                outset[def_id / 64] |= 1u64 << (def_id % 64);
            }
            if inset != in_sets[pc] || outset != out_sets[pc] {
                in_sets[pc] = inset;
                out_sets[pc] = outset;
                changed = true;
            }
        }
    }

    // Emit def-use edges: defs of r reaching pc, for each use of r at pc.
    let mut edges = Vec::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        for (slot, &reg) in I::uses(instr).iter().enumerate() {
            for &def_id in &defs_of_reg[reg.index()] {
                if in_sets[pc][def_id / 64] >> (def_id % 64) & 1 == 1 {
                    let (def_pc, _) = def_site[def_id].expect("populated");
                    edges.push(DefUse {
                        def_pc,
                        use_pc: pc,
                        reg,
                        use_slot: slot,
                    });
                }
            }
        }
    }
    edges
}

/// Simplified control dependences: for every *forward* conditional branch
/// `b → t`, the instructions strictly between `b` and `t` execute only if
/// the branch falls through, so they are control-dependent on `b`.
///
/// This captures the then-side of `if` and the bodies of structured loops
/// produced by the `glaive-lang` code generator; else-sides reached via the
/// taken edge are approximated away (documented deviation from full
/// post-dominance-frontier control dependence).
pub fn control_deps<I: Isa>(program: &Program<I>) -> Vec<(usize, usize)> {
    let mut deps = Vec::new();
    for (pc, instr) in program.instrs().iter().enumerate() {
        if let Flow::Branch(target) = I::flow(instr) {
            if target > pc + 1 {
                for dep in pc + 1..target.min(program.len()) {
                    deps.push((pc, dep));
                }
            }
        }
    }
    deps
}

/// Memory dependences: store → load pairs that share an offset alias class
/// and where the load is CFG-reachable from the store.
///
/// The code generator addresses arrays as `mem[index_reg + array_base]` and
/// spill slots as `mem[zero_reg + slot]`, so instructions with equal offset
/// constants access the same array or slot — equal offsets form the static
/// alias classes.
pub fn memory_deps<I: Isa>(program: &Program<I>) -> Vec<(usize, usize)> {
    let n = program.len();
    let succs = cfg_successors(program);
    let stores: Vec<(usize, i64)> = program
        .instrs()
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| match I::mem_access(i) {
            Some(m) if m.is_store => Some((pc, m.alias)),
            _ => None,
        })
        .collect();
    let loads: Vec<(usize, i64)> = program
        .instrs()
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| match I::mem_access(i) {
            Some(m) if !m.is_store => Some((pc, m.alias)),
            _ => None,
        })
        .collect();

    let mut deps = Vec::new();
    for &(spc, soff) in &stores {
        // BFS reachability from the store.
        let mut reach = vec![false; n];
        let mut queue = vec![spc];
        while let Some(pc) = queue.pop() {
            for &s in &succs[pc] {
                if !reach[s] {
                    reach[s] = true;
                    queue.push(s);
                }
            }
        }
        for &(lpc, loff) in &loads {
            if loff == soff && reach[lpc] {
                deps.push((spc, lpc));
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{AluOp, Asm, BranchCond};

    fn sum_program() -> Program {
        let mut asm = Asm::new("sum");
        let (acc, i, one, lim) = (Reg(1), Reg(2), Reg(3), Reg(4));
        asm.li(acc, 0); // 0
        asm.li(i, 1); // 1
        asm.li(one, 1); // 2
        asm.li(lim, 10); // 3
        let top = asm.label();
        asm.bind(top);
        asm.alu(AluOp::Add, acc, acc, i); // 4
        asm.alu(AluOp::Add, i, i, one); // 5
        asm.branch(BranchCond::Le, i, lim, top); // 6
        asm.out(acc); // 7
        asm.halt(); // 8
        asm.finish().expect("resolves")
    }

    #[test]
    fn cfg_shapes() {
        let p = sum_program();
        let s = cfg_successors(&p);
        assert_eq!(s[0], vec![1]);
        assert_eq!(s[6], vec![7, 4]); // fallthrough + backward target
        assert!(s[8].is_empty()); // halt
    }

    #[test]
    fn def_use_tracks_loop_carried_values() {
        let p = sum_program();
        let chains = def_use_chains(&p);
        // Every path to the out (pc 7) passes through the add at pc 4, so
        // the initial def at pc 0 is killed and only pc 4 reaches it.
        let acc_defs: Vec<usize> = chains
            .iter()
            .filter(|e| e.use_pc == 7)
            .map(|e| e.def_pc)
            .collect();
        assert_eq!(acc_defs, vec![4]);
        // acc at the add itself (pc 4, slot 0) is loop-carried: both the
        // initial def (pc 0) and its own previous iteration (pc 4) reach it.
        let acc_add_defs: Vec<usize> = chains
            .iter()
            .filter(|e| e.use_pc == 4 && e.use_slot == 0)
            .map(|e| e.def_pc)
            .collect();
        assert!(acc_add_defs.contains(&0));
        assert!(acc_add_defs.contains(&4));
        // i at the add (pc 4, slot 1) comes from pc 1 and pc 5.
        let i_defs: Vec<usize> = chains
            .iter()
            .filter(|e| e.use_pc == 4 && e.use_slot == 1)
            .map(|e| e.def_pc)
            .collect();
        assert!(i_defs.contains(&1));
        assert!(i_defs.contains(&5));
    }

    #[test]
    fn redefinition_kills_earlier_def() {
        let mut asm = Asm::new("kill");
        asm.li(Reg(1), 1); // 0
        asm.li(Reg(1), 2); // 1 kills 0
        asm.out(Reg(1)); // 2
        asm.halt();
        let p = asm.finish().expect("resolves");
        let chains = def_use_chains(&p);
        let defs: Vec<usize> = chains
            .iter()
            .filter(|e| e.use_pc == 2)
            .map(|e| e.def_pc)
            .collect();
        assert_eq!(defs, vec![1]);
    }

    #[test]
    fn control_deps_cover_forward_branch_body() {
        let mut asm = Asm::new("if");
        let end = asm.label();
        asm.li(Reg(1), 0); // 0
        asm.branch(BranchCond::Ne, Reg(1), Reg(1), end); // 1
        asm.li(Reg(2), 1); // 2 (guarded)
        asm.li(Reg(3), 2); // 3 (guarded)
        asm.bind(end);
        asm.out(Reg(1)); // 4
        asm.halt();
        let p = asm.finish().expect("resolves");
        let deps = control_deps(&p);
        assert!(deps.contains(&(1, 2)));
        assert!(deps.contains(&(1, 3)));
        assert!(!deps.contains(&(1, 4)));
    }

    #[test]
    fn backward_branches_add_no_control_deps() {
        let p = sum_program();
        let deps = control_deps(&p);
        assert!(
            deps.iter().all(|&(b, _)| b != 6),
            "backward loop branch excluded"
        );
    }

    #[test]
    fn memory_deps_respect_alias_classes_and_reachability() {
        let mut asm = Asm::new("mem");
        asm.set_mem_words(16);
        asm.li(Reg(1), 0); // 0
        asm.store(Reg(1), Reg(1), 4); // 1: class 4
        asm.store(Reg(1), Reg(1), 8); // 2: class 8
        asm.load(Reg(2), Reg(1), 4); // 3: class 4
        asm.load(Reg(3), Reg(1), 8); // 4: class 8
        asm.halt();
        let p = asm.finish().expect("resolves");
        let deps = memory_deps(&p);
        assert!(deps.contains(&(1, 3)));
        assert!(deps.contains(&(2, 4)));
        assert!(!deps.contains(&(1, 4)));
        assert!(!deps.contains(&(2, 3)));
    }

    #[test]
    fn load_before_store_is_not_dependent() {
        let mut asm = Asm::new("order");
        asm.set_mem_words(8);
        asm.li(Reg(1), 0);
        asm.load(Reg(2), Reg(1), 4); // 1: load first
        asm.store(Reg(2), Reg(1), 4); // 2: store after
        asm.halt();
        let p = asm.finish().expect("resolves");
        let deps = memory_deps(&p);
        assert!(!deps.contains(&(2, 1)));
    }
}
