//! Graphviz DOT export of the instruction-level CDFG (the intermediate
//! graph of Fig. 3a/3b before operand expansion), for visual inspection of
//! the dependences feeding bit-level construction.

use std::fmt::Write as _;

use glaive_isa::{Isa, Program};

use crate::analysis::{control_deps, def_use_chains, memory_deps};

/// Renders the instruction-level CDFG of `program` as Graphviz DOT.
///
/// Nodes are instructions (labelled `pc: disasm`); edges are coloured by
/// dependence kind: black = data (`D_D`), blue = control (`D_C`),
/// red = memory (`D_M`).
///
/// # Example
///
/// ```
/// use glaive_isa::{Asm, Reg, AluOp};
/// let mut asm = Asm::new("t");
/// asm.li(Reg(1), 2);
/// asm.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
/// asm.out(Reg(2));
/// asm.halt();
/// let p = asm.finish()?;
/// let dot = glaive_cdfg::instruction_dot(&p);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("li r1, 2"));
/// # Ok::<(), glaive_isa::AsmError>(())
/// ```
pub fn instruction_dot<I: Isa>(program: &Program<I>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", program.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  node [shape=box, fontname=\"monospace\", fontsize=10];"
    );
    for (pc, instr) in program.instrs().iter().enumerate() {
        let label = format!("{pc}: {instr}").replace('"', "\\\"");
        let _ = writeln!(out, "  n{pc} [label=\"{label}\"];");
    }
    // Data dependences, deduplicated across use slots.
    let mut data_edges: Vec<(usize, usize)> = def_use_chains(program)
        .iter()
        .map(|e| (e.def_pc, e.use_pc))
        .collect();
    data_edges.sort_unstable();
    data_edges.dedup();
    for (from, to) in data_edges {
        let _ = writeln!(out, "  n{from} -> n{to};");
    }
    for (from, to) in control_deps(program) {
        let _ = writeln!(out, "  n{from} -> n{to} [color=blue, style=dashed];");
    }
    for (from, to) in memory_deps(program) {
        let _ = writeln!(out, "  n{from} -> n{to} [color=red];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use glaive_isa::{Asm, BranchCond, Reg};

    #[test]
    fn dot_contains_all_nodes_and_edge_kinds() {
        let mut asm = Asm::new("dot");
        asm.set_mem_words(8);
        let end = asm.label();
        asm.li(Reg(1), 0); // 0
        asm.store(Reg(1), Reg(1), 2); // 1
        asm.load(Reg(2), Reg(1), 2); // 2
        asm.branch(BranchCond::Eq, Reg(2), Reg(1), end); // 3
        asm.out(Reg(2)); // 4 (guarded)
        asm.bind(end);
        asm.halt(); // 5
        let p = asm.finish().expect("resolves");
        let dot = instruction_dot(&p);
        for pc in 0..p.len() {
            assert!(dot.contains(&format!("n{pc} [label=")), "node {pc} missing");
        }
        assert!(dot.contains("color=red"), "memory edge rendered");
        assert!(dot.contains("color=blue"), "control edge rendered");
        assert!(dot.contains("n1 -> n2 [color=red]"), "store→load edge");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn quotes_in_labels_are_escaped() {
        // No instruction prints quotes today, but the escape must hold.
        let mut asm = Asm::new("q");
        asm.halt();
        let p = asm.finish().expect("resolves");
        let dot = instruction_dot(&p);
        assert!(!dot.contains("\"\"halt"));
    }
}
