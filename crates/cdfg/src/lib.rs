//! Bit-level control–data flow graph (CDFG) extraction and node features —
//! the static-analysis half of GLAIVE (paper §III-B, Fig. 3, Table I).
//!
//! Construction follows the paper's three refinement steps:
//!
//! 1. **Instruction-level CDFG** — one node per static instruction, edges
//!    for data (`D_D`, register def-use chains via reaching definitions),
//!    control (`D_C`, branch → control-dependent instructions) and memory
//!    (`D_M`, store → aliasing load) dependences.
//! 2. **Operand-level graph** — each instruction node is replaced by its
//!    operand registers (sources and destination).
//! 3. **Bit blasting** — each operand becomes one node per (sampled) bit,
//!    with intra-instruction edges from every source-operand bit to every
//!    destination-operand bit, and inter-instruction edges connecting equal
//!    bit positions (a register transfer preserves bit positions).
//!
//! `bit_stride` subsamples bit positions (stride 1 = all 64, the paper's
//! setting; the default of 8 keeps graphs small enough for the from-scratch
//! CPU GNN while preserving the bit-position signal — see DESIGN.md §1).
//! Setting `bit_stride = 64` collapses the graph to word level, which is the
//! paper's word-vs-bit ablation.
//!
//! # Example
//!
//! ```
//! use glaive_isa::{Asm, Reg, AluOp};
//! use glaive_cdfg::{Cdfg, CdfgConfig};
//!
//! let mut asm = Asm::new("t");
//! asm.li(Reg(1), 3);
//! asm.alu(AluOp::Add, Reg(2), Reg(1), Reg(1));
//! asm.out(Reg(2));
//! asm.halt();
//! let p = asm.finish()?;
//!
//! let g = Cdfg::build(&p, &CdfgConfig { bit_stride: 16 });
//! assert!(g.node_count() > 0);
//! // The add's destination bits aggregate from its source bits.
//! # Ok::<(), glaive_isa::AsmError>(())
//! ```

pub mod analysis;
mod dot;
mod features;
mod graph;

pub use dot::instruction_dot;
pub use features::{instruction_features, FEATURE_DIM, INSTR_FEATURE_DIM};
pub use graph::{BitNode, Cdfg, CdfgConfig, EdgeStats};
