//! Cross-crate integration tests: the full compile → simulate → inject →
//! graph → learn → rank pipeline.

use glaive::{metrics, prepare_benchmark, train_models, BenchData, Method, PipelineConfig};
use glaive_bench_suite::{control, data};

fn quick() -> PipelineConfig {
    PipelineConfig::quick_test()
}

fn prepared(b: glaive_bench_suite::Benchmark) -> BenchData {
    prepare_benchmark(b, &quick())
}

/// The whole pipeline runs and produces consistent artefacts on every
/// benchmark of the suite.
#[test]
fn every_benchmark_flows_through_the_pipeline() {
    for bench in glaive_bench_suite::suite(3) {
        let name = bench.name;
        let d = prepared(bench);
        assert!(d.bit_datapoints() > 0, "{name}: no labels");
        assert!(d.instr_datapoints() > 0, "{name}: no instruction tuples");
        assert_eq!(
            d.features.rows(),
            d.cdfg.node_count(),
            "{name}: feature rows"
        );
        assert_eq!(
            d.preds.node_count(),
            d.cdfg.node_count(),
            "{name}: adjacency"
        );
        // Every FI bit label landed on a CDFG node.
        assert_eq!(
            d.truth.bit_labels().len(),
            d.mask.iter().filter(|&&m| m).count(),
            "{name}: labels lost in the join"
        );
    }
}

/// Training on one program and estimating another yields valid, complete
/// estimates for every method.
#[test]
fn cross_program_estimation_is_valid() {
    let train = prepared(data::fft::build(3));
    let test = prepared(data::lu::build(3));
    let models = train_models(&[&train], &quick());
    for method in Method::ALL {
        let est = models.estimate(method, &test);
        for pc in test.covered_pcs() {
            let t = est[pc].expect("estimate for covered pc");
            assert!(
                (t.crash + t.sdc + t.masked - 1.0).abs() < 1e-6,
                "{}: unnormalised tuple at pc {pc}",
                method.name()
            );
            assert!(t.crash >= 0.0 && t.sdc >= 0.0 && t.masked >= 0.0);
        }
        let cov = metrics::top_k_coverage(&est, &test, 30.0);
        assert!(
            (0.0..=1.0).contains(&cov),
            "{}: coverage {cov}",
            method.name()
        );
        let err = metrics::program_vulnerability_error(&est, &test);
        assert!((0.0..=2.0).contains(&err), "{}: error {err}", method.name());
    }
}

/// The pipeline is deterministic end to end: preparing and training twice
/// gives identical estimates.
#[test]
fn pipeline_is_deterministic() {
    let config = quick();
    let run = || {
        let train = prepare_benchmark(control::dijkstra::build(5), &config);
        let test = prepare_benchmark(control::sobel::build(5), &config);
        let models = train_models(&[&train], &config);
        let est = models.estimate(Method::Glaive, &test);
        est.into_iter()
            .map(|t| t.map(|t| (t.crash, t.sdc, t.masked)))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

/// A learned GLAIVE model beats the trivial always-majority baseline on a
/// held-out program of the same category.
#[test]
fn learning_beats_majority_baseline() {
    let config = quick();
    let train_a = prepare_benchmark(data::fft::build(3), &config);
    let train_b = prepare_benchmark(data::swaptions::build(3), &config);
    let test = prepare_benchmark(data::lu::build(3), &config);
    let models = train_models(&[&train_a, &train_b], &config);

    let mut counts = [0usize; 3];
    for d in [&train_a, &train_b] {
        for (i, &m) in d.mask.iter().enumerate() {
            if m {
                counts[d.labels[i]] += 1;
            }
        }
    }
    let majority = (0..3).max_by_key(|&c| counts[c]).expect("classes");
    let majority_acc = metrics::bit_accuracy(&vec![majority; test.cdfg.node_count()], &test);

    let preds = models
        .bit_predictions(Method::Glaive, &test)
        .expect("bit-level");
    let acc = metrics::bit_accuracy(&preds, &test);
    assert!(
        acc >= majority_acc,
        "GLAIVE {acc:.3} should not lose to majority {majority_acc:.3}"
    );
}

/// The FI oracle ranked by its own tuples achieves full coverage; an
/// adversarially inverted ranking achieves less.
#[test]
fn coverage_separates_good_and_bad_rankings() {
    let d = prepared(control::dijkstra::build(9));
    assert_eq!(metrics::top_k_coverage(&d.fi_tuples, &d, 25.0), 1.0);

    // Invert the oracle: swap crash and masked probabilities.
    let inverted: Vec<_> = d
        .fi_tuples
        .iter()
        .map(|t| {
            t.map(|t| glaive::VulnTuple {
                crash: t.masked,
                sdc: t.sdc,
                masked: t.crash,
            })
        })
        .collect();
    let inv_cov = metrics::top_k_coverage(&inverted, &d, 25.0);
    assert!(
        inv_cov < 1.0,
        "inverted ranking should lose coverage, got {inv_cov}"
    );
}

/// Bit-level labels join onto exactly the executed instructions' nodes and
/// the estimator interfaces agree on node counts.
#[test]
fn campaign_and_graph_agree_on_site_space() {
    let d = prepared(data::radix::build(4));
    for (site, _) in d.truth.bit_labels() {
        assert!(
            d.cdfg.node_id(site.pc, site.slot, site.bit).is_some(),
            "campaign site {site} missing from graph"
        );
    }
}
