//! Integrity checks across the benchmark suite: golden runs, graph/site
//! alignment, and stability of the generated inputs.

use glaive_cdfg::{Cdfg, CdfgConfig, FEATURE_DIM};
use glaive_sim::run;

/// Every benchmark's golden run halts cleanly with non-empty output.
#[test]
fn all_golden_runs_are_clean() {
    for b in glaive_bench_suite::suite(42) {
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        assert!(r.status.is_clean(), "{}: {:?}", b.name, r.status);
        assert!(!r.output.is_empty(), "{}: no output", b.name);
        assert!(r.dyn_instrs > 100, "{}: suspiciously short run", b.name);
    }
}

/// Golden runs are identical across process invocations (pure functions of
/// the seed).
#[test]
fn suite_is_deterministic_per_seed() {
    let a = glaive_bench_suite::suite(5);
    let b = glaive_bench_suite::suite(5);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.init_mem, y.init_mem, "{}", x.name);
        let ra = run(x.program(), &x.init_mem, &x.exec_config());
        let rb = run(y.program(), &y.init_mem, &y.exec_config());
        assert_eq!(ra.output, rb.output, "{}", x.name);
    }
}

/// CDFG construction succeeds at several strides and the feature matrix
/// always has the documented width.
#[test]
fn graphs_build_at_multiple_strides() {
    for b in glaive_bench_suite::suite(1).into_iter().take(4) {
        for stride in [8, 16, 64] {
            let g = Cdfg::build(b.program(), &CdfgConfig { bit_stride: stride });
            assert!(g.node_count() > 0, "{} stride {stride}", b.name);
            let m = g.feature_matrix();
            assert_eq!(m.len(), g.node_count() * FEATURE_DIM);
            // Degree sanity: no node may aggregate from itself.
            for id in 0..g.node_count() as u32 {
                assert!(!g.preds(id).contains(&id), "{}: self-loop at {id}", b.name);
            }
        }
    }
}

/// Word-level graphs (stride 64) are strictly smaller than bit-level ones,
/// preserving the bit-vs-word ablation's premise.
#[test]
fn word_level_graphs_are_smaller() {
    let b = glaive_bench_suite::control::dijkstra::build(1);
    let bit = Cdfg::build(b.program(), &CdfgConfig { bit_stride: 8 });
    let word = Cdfg::build(b.program(), &CdfgConfig { bit_stride: 64 });
    assert_eq!(bit.node_count(), 8 * word.node_count());
    assert!(bit.edge_count() > word.edge_count());
}

/// The execution budget declared by each benchmark comfortably covers its
/// golden run (fault campaigns scale budgets from the golden length).
#[test]
fn exec_budgets_have_headroom() {
    for b in glaive_bench_suite::suite(2) {
        let r = run(b.program(), &b.init_mem, &b.exec_config());
        assert!(
            r.dyn_instrs * b.hang_factor < b.exec_config().max_instrs,
            "{}: budget too tight",
            b.name
        );
    }
}
