//! Workspace-level property tests on the metric and aggregation layers,
//! driven by randomly generated vulnerability tuples and rankings from a
//! deterministic inline RNG (no external crates, so the suite builds
//! offline).

use glaive::{metrics, prepare_benchmark, PipelineConfig, VulnTuple};

const CASES: u64 = 64;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn tuple(&mut self) -> VulnTuple {
        let (a, b, c) = (self.unit(), self.unit(), self.unit());
        let sum = (a + b + c).max(1e-9);
        VulnTuple {
            crash: a / sum,
            sdc: b / sum,
            masked: c / sum,
        }
    }
}

/// A shared, lazily prepared benchmark so each property case doesn't rerun
/// the fault campaign.
fn shared_data() -> &'static glaive::BenchData {
    use std::sync::OnceLock;
    static DATA: OnceLock<glaive::BenchData> = OnceLock::new();
    DATA.get_or_init(|| {
        prepare_benchmark(
            glaive_bench_suite::control::dijkstra::build(11),
            &PipelineConfig::quick_test(),
        )
    })
}

/// Top-K coverage of arbitrary estimates is always within [0, 1], for
/// any budget.
#[test]
fn coverage_is_bounded() {
    let d = shared_data();
    let mut rng = Rng(41);
    for _ in 0..CASES {
        let k = 1.0 + rng.unit() * 99.0;
        let tuples: Vec<Option<VulnTuple>> = (0..d.bench.program().len())
            .map(|_| Some(rng.tuple()))
            .collect();
        let c = metrics::top_k_coverage(&tuples, d, k);
        assert!((0.0..=1.0).contains(&c));
    }
}

/// The ranking is always a permutation of the FI-covered PCs.
#[test]
fn ranking_is_a_permutation() {
    let d = shared_data();
    let mut rng = Rng(42);
    for _ in 0..CASES {
        let tuples: Vec<Option<VulnTuple>> = (0..d.bench.program().len())
            .map(|_| {
                let x = rng.unit();
                Some(VulnTuple {
                    crash: x,
                    sdc: 0.0,
                    masked: 1.0 - x,
                })
            })
            .collect();
        let mut ranked = metrics::ranking(&tuples, d);
        ranked.sort_unstable();
        assert_eq!(ranked, d.covered_pcs());
    }
}

/// Program vulnerability of any valid tuple assignment is itself a
/// valid distribution.
#[test]
fn program_vulnerability_is_a_distribution() {
    let d = shared_data();
    let mut rng = Rng(43);
    for _ in 0..CASES {
        let tuples = vec![Some(rng.tuple()); d.bench.program().len()];
        let pv = metrics::program_vulnerability(&tuples, d);
        assert!(pv.crash >= 0.0 && pv.sdc >= 0.0 && pv.masked >= 0.0);
        assert!((pv.crash + pv.sdc + pv.masked - 1.0).abs() < 1e-6);
    }
}

/// abs_error is a metric-like distance: nonnegative, zero on identity,
/// symmetric, and bounded by 2 for distributions.
#[test]
fn abs_error_is_distance_like() {
    let mut rng = Rng(44);
    for _ in 0..CASES {
        let (a, b) = (rng.tuple(), rng.tuple());
        assert!(a.abs_error(&b) >= 0.0);
        assert!(a.abs_error(&a) < 1e-12);
        assert!((a.abs_error(&b) - b.abs_error(&a)).abs() < 1e-12);
        assert!(a.abs_error(&b) <= 2.0 + 1e-9);
    }
}

/// The severity ranking key is monotone in crash and sdc probability.
#[test]
fn ranking_key_is_monotone() {
    let mut rng = Rng(45);
    for _ in 0..CASES {
        let t = rng.tuple();
        let eps = 0.001 + rng.unit() * 0.199;
        // Moving mass from masked to crash must increase the key.
        let more_crash = VulnTuple {
            crash: t.crash + eps * t.masked,
            sdc: t.sdc,
            masked: t.masked * (1.0 - eps),
        };
        assert!(more_crash.ranking_key() > t.ranking_key() - 1e-12);
    }
}

/// Tuple construction from counts is scale-invariant.
#[test]
fn from_counts_scale_invariant() {
    let mut rng = Rng(46);
    for _ in 0..CASES {
        let (c, s, m) = (rng.next() % 100, rng.next() % 100, rng.next() % 100);
        let k = 1 + rng.next() % 49;
        if c + s + m == 0 {
            continue;
        }
        let a = VulnTuple::from_counts(c, s, m);
        let b = VulnTuple::from_counts(c * k, s * k, m * k);
        assert!((a.crash - b.crash).abs() < 1e-12);
        assert!((a.sdc - b.sdc).abs() < 1e-12);
        assert!((a.masked - b.masked).abs() < 1e-12);
    }
}
