//! Workspace-level property tests on the metric and aggregation layers,
//! driven by randomly generated vulnerability tuples and rankings.

use glaive::{metrics, prepare_benchmark, PipelineConfig, VulnTuple};
use proptest::prelude::*;

/// A shared, lazily prepared benchmark so each property case doesn't rerun
/// the fault campaign.
fn shared_data() -> &'static glaive::BenchData {
    use std::sync::OnceLock;
    static DATA: OnceLock<glaive::BenchData> = OnceLock::new();
    DATA.get_or_init(|| {
        prepare_benchmark(
            glaive_bench_suite::control::dijkstra::build(11),
            &PipelineConfig::quick_test(),
        )
    })
}

fn arb_tuple() -> impl Strategy<Value = VulnTuple> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b, c)| {
        let sum = (a + b + c).max(1e-9);
        VulnTuple {
            crash: a / sum,
            sdc: b / sum,
            masked: c / sum,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Top-K coverage of arbitrary estimates is always within [0, 1], for
    /// any budget.
    #[test]
    fn coverage_is_bounded(seed in any::<u64>(), k in 1.0f64..100.0) {
        let d = shared_data();
        let mut rng = seed;
        let tuples: Vec<Option<VulnTuple>> = (0..d.bench.program().len())
            .map(|_| {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let a = (rng >> 33) as f64 / (1u64 << 31) as f64;
                let b = ((rng >> 13) & 0xfffff) as f64 / (1 << 20) as f64;
                let sum = (a + b + 0.1).max(1e-9);
                Some(VulnTuple { crash: a / sum, sdc: b / sum, masked: 0.1 / sum })
            })
            .collect();
        let c = metrics::top_k_coverage(&tuples, d, k);
        prop_assert!((0.0..=1.0).contains(&c));
    }

    /// The ranking is always a permutation of the FI-covered PCs.
    #[test]
    fn ranking_is_a_permutation(seed in any::<u64>()) {
        let d = shared_data();
        let mut rng = seed;
        let tuples: Vec<Option<VulnTuple>> = (0..d.bench.program().len())
            .map(|_| {
                rng = rng.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let x = (rng >> 33) as f64 / (1u64 << 31) as f64;
                Some(VulnTuple { crash: x, sdc: 0.0, masked: 1.0 - x })
            })
            .collect();
        let mut ranked = metrics::ranking(&tuples, d);
        ranked.sort_unstable();
        prop_assert_eq!(ranked, d.covered_pcs());
    }

    /// Program vulnerability of any valid tuple assignment is itself a
    /// valid distribution.
    #[test]
    fn program_vulnerability_is_a_distribution(t in arb_tuple()) {
        let d = shared_data();
        let tuples = vec![Some(t); d.bench.program().len()];
        let pv = metrics::program_vulnerability(&tuples, d);
        prop_assert!(pv.crash >= 0.0 && pv.sdc >= 0.0 && pv.masked >= 0.0);
        prop_assert!((pv.crash + pv.sdc + pv.masked - 1.0).abs() < 1e-6);
    }

    /// abs_error is a metric-like distance: nonnegative, zero on identity,
    /// symmetric, and bounded by 2 for distributions.
    #[test]
    fn abs_error_is_distance_like(a in arb_tuple(), b in arb_tuple()) {
        prop_assert!(a.abs_error(&b) >= 0.0);
        prop_assert!(a.abs_error(&a) < 1e-12);
        prop_assert!((a.abs_error(&b) - b.abs_error(&a)).abs() < 1e-12);
        prop_assert!(a.abs_error(&b) <= 2.0 + 1e-9);
    }

    /// The severity ranking key is monotone in crash and sdc probability.
    #[test]
    fn ranking_key_is_monotone(t in arb_tuple(), eps in 0.001f64..0.2) {
        // Moving mass from masked to crash must increase the key.
        let more_crash = VulnTuple {
            crash: t.crash + eps * t.masked,
            sdc: t.sdc,
            masked: t.masked * (1.0 - eps),
        };
        prop_assert!(more_crash.ranking_key() > t.ranking_key() - 1e-12);
    }

    /// Tuple construction from counts is scale-invariant.
    #[test]
    fn from_counts_scale_invariant(c in 0u64..100, s in 0u64..100, m in 0u64..100, k in 1u64..50) {
        prop_assume!(c + s + m > 0);
        let a = VulnTuple::from_counts(c, s, m);
        let b = VulnTuple::from_counts(c * k, s * k, m * k);
        prop_assert!((a.crash - b.crash).abs() < 1e-12);
        prop_assert!((a.sdc - b.sdc).abs() < 1e-12);
        prop_assert!((a.masked - b.masked).abs() < 1e-12);
    }
}
