//! Workspace-level property tests on the metric and aggregation layers,
//! driven by randomly generated vulnerability tuples and rankings from a
//! deterministic inline RNG (no external crates, so the suite builds
//! offline).

use glaive::{metrics, prepare_benchmark, PipelineConfig, VulnTuple};

const CASES: u64 = 64;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn tuple(&mut self) -> VulnTuple {
        let (a, b, c) = (self.unit(), self.unit(), self.unit());
        let sum = (a + b + c).max(1e-9);
        VulnTuple {
            crash: a / sum,
            sdc: b / sum,
            masked: c / sum,
        }
    }
}

/// A shared, lazily prepared benchmark so each property case doesn't rerun
/// the fault campaign.
fn shared_data() -> &'static glaive::BenchData {
    use std::sync::OnceLock;
    static DATA: OnceLock<glaive::BenchData> = OnceLock::new();
    DATA.get_or_init(|| {
        prepare_benchmark(
            glaive_bench_suite::control::dijkstra::build(11),
            &PipelineConfig::quick_test(),
        )
    })
}

/// Top-K coverage of arbitrary estimates is always within [0, 1], for
/// any budget.
#[test]
fn coverage_is_bounded() {
    let d = shared_data();
    let mut rng = Rng(41);
    for _ in 0..CASES {
        let k = 1.0 + rng.unit() * 99.0;
        let tuples: Vec<Option<VulnTuple>> = (0..d.bench.program().len())
            .map(|_| Some(rng.tuple()))
            .collect();
        let c = metrics::top_k_coverage(&tuples, d, k);
        assert!((0.0..=1.0).contains(&c));
    }
}

/// The ranking is always a permutation of the FI-covered PCs.
#[test]
fn ranking_is_a_permutation() {
    let d = shared_data();
    let mut rng = Rng(42);
    for _ in 0..CASES {
        let tuples: Vec<Option<VulnTuple>> = (0..d.bench.program().len())
            .map(|_| {
                let x = rng.unit();
                Some(VulnTuple {
                    crash: x,
                    sdc: 0.0,
                    masked: 1.0 - x,
                })
            })
            .collect();
        let mut ranked = metrics::ranking(&tuples, d);
        ranked.sort_unstable();
        assert_eq!(ranked, d.covered_pcs());
    }
}

/// Program vulnerability of any valid tuple assignment is itself a
/// valid distribution.
#[test]
fn program_vulnerability_is_a_distribution() {
    let d = shared_data();
    let mut rng = Rng(43);
    for _ in 0..CASES {
        let tuples = vec![Some(rng.tuple()); d.bench.program().len()];
        let pv = metrics::program_vulnerability(&tuples, d);
        assert!(pv.crash >= 0.0 && pv.sdc >= 0.0 && pv.masked >= 0.0);
        assert!((pv.crash + pv.sdc + pv.masked - 1.0).abs() < 1e-6);
    }
}

/// abs_error is a metric-like distance: nonnegative, zero on identity,
/// symmetric, and bounded by 2 for distributions.
#[test]
fn abs_error_is_distance_like() {
    let mut rng = Rng(44);
    for _ in 0..CASES {
        let (a, b) = (rng.tuple(), rng.tuple());
        assert!(a.abs_error(&b) >= 0.0);
        assert!(a.abs_error(&a) < 1e-12);
        assert!((a.abs_error(&b) - b.abs_error(&a)).abs() < 1e-12);
        assert!(a.abs_error(&b) <= 2.0 + 1e-9);
    }
}

/// The severity ranking key is monotone in crash and sdc probability.
#[test]
fn ranking_key_is_monotone() {
    let mut rng = Rng(45);
    for _ in 0..CASES {
        let t = rng.tuple();
        let eps = 0.001 + rng.unit() * 0.199;
        // Moving mass from masked to crash must increase the key.
        let more_crash = VulnTuple {
            crash: t.crash + eps * t.masked,
            sdc: t.sdc,
            masked: t.masked * (1.0 - eps),
        };
        assert!(more_crash.ranking_key() > t.ranking_key() - 1e-12);
    }
}

// ---------------------------------------------------------------------------
// CsrGraph invariants over random kind-tagged edge lists
// ---------------------------------------------------------------------------

use glaive_graph::{CsrGraph, EdgeKind};

/// A random kind-tagged edge list (with deliberate duplicates and
/// multi-kind repeats) plus the graph built from it.
fn random_tagged_graph(rng: &mut Rng) -> (usize, Vec<(u32, u32, u8)>, CsrGraph) {
    let n = 1 + (rng.next() % 40) as usize;
    let m = (rng.next() % 120) as usize;
    let kinds = [
        EdgeKind::Intra.bit(),
        EdgeKind::Data.bit(),
        EdgeKind::Control.bit(),
        EdgeKind::Memory.bit(),
    ];
    let edges: Vec<(u32, u32, u8)> = (0..m)
        .map(|_| {
            (
                (rng.next() % n as u64) as u32,
                (rng.next() % n as u64) as u32,
                kinds[(rng.next() % 4) as usize],
            )
        })
        .collect();
    let graph = CsrGraph::from_tagged(n, edges.clone());
    (n, edges, graph)
}

/// Construction from arbitrary tagged edge lists upholds every CSR
/// invariant: offsets start at zero and are monotone, rows are strictly
/// increasing (sorted and duplicate-free), kind masks are non-empty.
#[test]
fn csr_construction_upholds_invariants() {
    let mut rng = Rng(47);
    for _ in 0..CASES {
        let (_, _, g) = random_tagged_graph(&mut rng);
        g.check_invariants().expect("invariants hold");
    }
}

/// Duplicate pairs collapse to one edge whose kind mask is the OR of all
/// inserted kinds — no insertion is lost, none is invented.
#[test]
fn csr_rows_dedup_with_or_merged_kinds() {
    let mut rng = Rng(48);
    for _ in 0..CASES {
        let (n, edges, g) = random_tagged_graph(&mut rng);
        let mut expected: std::collections::HashMap<(u32, u32), u8> =
            std::collections::HashMap::new();
        for &(u, v, k) in &edges {
            *expected.entry((u, v)).or_default() |= k;
        }
        assert_eq!(g.edge_count(), expected.len(), "one edge per distinct pair");
        for u in 0..n {
            for (&v, &k) in g.neighbors(u).iter().zip(g.kinds(u)) {
                assert_eq!(
                    expected.get(&(u as u32, v)).copied(),
                    Some(k),
                    "edge ({u}, {v}) kind mask"
                );
            }
        }
    }
}

/// `filtered(mask)` keeps exactly the edges whose kinds intersect the
/// mask, with the surviving kind bits — a subset of the full graph that
/// still satisfies the invariants.
#[test]
fn csr_filtered_is_an_intersecting_subset() {
    let mut rng = Rng(49);
    for _ in 0..CASES {
        let (n, _, g) = random_tagged_graph(&mut rng);
        let mask = 1 + (rng.next() % EdgeKind::ALL_MASK as u64) as u8;
        let f = g.filtered(mask);
        f.check_invariants().expect("filtered invariants hold");
        assert_eq!(f.node_count(), g.node_count());
        for v in 0..n {
            // Every filtered edge exists in the full graph with a
            // mask-intersecting kind…
            for (&t, &k) in f.neighbors(v).iter().zip(f.kinds(v)) {
                let idx = g
                    .neighbors(v)
                    .binary_search(&t)
                    .expect("edge in full graph");
                assert_eq!(k, g.kinds(v)[idx] & mask);
                assert_ne!(k, 0);
            }
            // …and every full-graph edge intersecting the mask survives.
            let expected = g
                .neighbors(v)
                .iter()
                .zip(g.kinds(v))
                .filter(|(_, &k)| k & mask != 0)
                .count();
            assert_eq!(f.neighbors(v).len(), expected, "row {v} edge count");
        }
    }
}

/// `symmetrised()` is symmetric, covers the original graph, and adds
/// nothing beyond the reversed edges.
#[test]
fn csr_symmetrised_is_symmetric_superset() {
    let mut rng = Rng(50);
    for _ in 0..CASES {
        let (n, _, g) = random_tagged_graph(&mut rng);
        let s = g.symmetrised();
        s.check_invariants().expect("symmetrised invariants hold");
        assert_eq!(s.node_count(), g.node_count());
        for v in 0..n {
            for &t in g.neighbors(v) {
                assert!(s.neighbors(v).contains(&t), "original edge {v}→{t} kept");
            }
            for &t in s.neighbors(v) {
                assert!(
                    s.neighbors(t as usize).contains(&(v as u32)),
                    "symmetric closure broken at {v} ↔ {t}"
                );
                let forward = g.neighbors(v).contains(&t);
                let backward = g.neighbors(t as usize).contains(&(v as u32));
                assert!(
                    forward || backward,
                    "invented edge {v}→{t} with no original direction"
                );
            }
        }
    }
}

/// The disjoint union preserves each part's rows verbatim under a base
/// shift and never crosses part boundaries — the soundness condition for
/// batched multi-graph inference.
#[test]
fn csr_disjoint_union_preserves_parts() {
    let mut rng = Rng(51);
    for _ in 0..CASES / 4 {
        let parts: Vec<(usize, CsrGraph)> = (0..3)
            .map(|_| {
                let (n, _, g) = random_tagged_graph(&mut rng);
                (n, g)
            })
            .collect();
        let refs: Vec<&CsrGraph> = parts.iter().map(|(_, g)| g).collect();
        let u = CsrGraph::disjoint_union(&refs);
        u.check_invariants().expect("union invariants hold");
        let mut base = 0u32;
        for (n, g) in &parts {
            for v in 0..*n {
                let row: Vec<u32> = u
                    .neighbors(base as usize + v)
                    .iter()
                    .map(|&t| t - base)
                    .collect();
                assert_eq!(row, g.neighbors(v), "part row shifted verbatim");
                assert!(
                    u.neighbors(base as usize + v)
                        .iter()
                        .all(|&t| t >= base && t < base + *n as u32),
                    "edge crosses a part boundary"
                );
            }
            base += *n as u32;
        }
    }
}

/// Tuple construction from counts is scale-invariant.
#[test]
fn from_counts_scale_invariant() {
    let mut rng = Rng(46);
    for _ in 0..CASES {
        let (c, s, m) = (rng.next() % 100, rng.next() % 100, rng.next() % 100);
        let k = 1 + rng.next() % 49;
        if c + s + m == 0 {
            continue;
        }
        let a = VulnTuple::try_from_counts(c, s, m).expect("non-zero counts");
        let b = VulnTuple::try_from_counts(c * k, s * k, m * k).expect("non-zero counts");
        assert!((a.crash - b.crash).abs() < 1e-12);
        assert!((a.sdc - b.sdc).abs() < 1e-12);
        assert!((a.masked - b.masked).abs() < 1e-12);
    }
}
