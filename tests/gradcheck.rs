//! Finite-difference check of the analytic GraphSAGE gradients.
//!
//! `GraphSage::compute_gradients` backpropagates through softmax
//! cross-entropy, the linear layers, ReLU, the `[h ‖ agg]` concatenation
//! split and the scatter-mean aggregation. This test pins the whole chain
//! against central differences on a tiny random CDFG: for **every**
//! parameter θᵢ, `(L(θᵢ+ε) − L(θᵢ−ε)) / 2ε` must agree with the analytic
//! `∂L/∂θᵢ` within a combined absolute + relative bound.
//!
//! Two f32 artefacts are handled explicitly:
//!
//! * **Rounding noise.** The loss carries ~1 ULP of rounding, so the
//!   difference quotient carries `ulp(L) / 2ε ≈ 6e-5` of absolute noise
//!   at ε = 1e-3 — the bound therefore has an absolute floor, not just a
//!   relative term.
//! * **ReLU kinks.** A fresh model has zero biases, so nodes whose layer
//!   input is all-zero (no predecessors, zero features) sit *exactly* on
//!   the ReLU kink, where the two one-sided derivatives differ and no ε
//!   converges. The test first nudges every parameter by a small
//!   deterministic offset so θ is in generic position, and retries each
//!   failing parameter at a smaller ε to step over any kink that still
//!   lands inside the probe interval.

use glaive_cdfg::{Cdfg, CdfgConfig, FEATURE_DIM};
use glaive_gnn::{GraphSage, SageConfig, TrainGraph};
use glaive_isa::{AluOp, Asm, BranchCond, Program, Reg};
use glaive_nn::Matrix;

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f32 {
        (self.next() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// A small program exercising all dependence kinds: ALU chains (data),
/// a branch (control), and a load/store pair (memory).
fn tiny_program() -> Program {
    let mut asm = Asm::new("gradcheck");
    asm.set_mem_words(4);
    let skip = asm.label();
    asm.li(Reg(1), 5)
        .li(Reg(2), 3)
        .alu(AluOp::Add, Reg(3), Reg(1), Reg(2))
        .alu_imm(AluOp::Mul, Reg(4), Reg(3), 7)
        .store(Reg(4), Reg(0), 0)
        .branch(BranchCond::Eq, Reg(3), Reg(1), skip)
        .alu_imm(AluOp::Sub, Reg(4), Reg(4), 1)
        .load(Reg(5), Reg(0), 0)
        .alu(AluOp::Xor, Reg(5), Reg(5), Reg(4));
    asm.bind(skip).out(Reg(5)).halt();
    asm.finish().expect("assembles")
}

/// Flat `[weights-row-major ‖ bias]` parameter count for each layer,
/// derived from the gradient shapes (the same flat order `nudged` uses).
fn layer_param_counts(grads: &[glaive_nn::LinearGrads]) -> Vec<usize> {
    grads.iter().map(|g| g.w.data().len() + g.b.len()).collect()
}

#[test]
fn analytic_gradients_match_central_differences() {
    let program = tiny_program();
    let cdfg = Cdfg::build(&program, &CdfgConfig { bit_stride: 16 });
    let n = cdfg.node_count();
    assert!(
        n > 10,
        "CDFG too small to be a meaningful probe ({n} nodes)"
    );

    let features = Matrix::from_vec(n, FEATURE_DIM, cdfg.feature_matrix());
    let graph = cdfg.preds_csr();

    // Random ternary labels over a partial mask (the training shape).
    let mut rng = Rng(0xDEC0DE);
    let labels: Vec<usize> = (0..n).map(|_| (rng.next() % 3) as usize).collect();
    let mut mask: Vec<bool> = (0..n).map(|_| !rng.next().is_multiple_of(4)).collect();
    mask[0] = true;

    let train_graph = TrainGraph {
        features: &features,
        graph,
        labels: &labels,
        mask: &mask,
    };

    let mut model = GraphSage::try_new(
        FEATURE_DIM,
        &SageConfig {
            hidden: 4,
            layers: 3,
            classes: 3,
            sample_size: 1,
            lr: 1e-2,
            epochs: 1,
            seed: 3,
        },
    )
    .expect("valid model config");

    // Analytic gradients over the *full* (unsampled) neighbourhood view,
    // so the finite-difference forward passes see the identical graph.
    let view = graph.view();

    // Move θ off the exact ReLU kinks that zero bias initialisation puts
    // isolated all-zero-input nodes on (pre-activation exactly 0, where
    // one-sided derivatives differ and central differences can't agree
    // with any subgradient choice).
    let counts = layer_param_counts(&model.compute_gradients(&train_graph, view).1);
    for (layer, &count) in counts.iter().enumerate() {
        for index in 0..count {
            model = model.nudged(layer, index, 0.02 + 0.06 * rng.unit());
        }
    }

    let (_, grads) = model.compute_gradients(&train_graph, view);
    assert_eq!(grads.len(), 3, "one gradient set per layer");

    // ulp(loss) / 2ε rounding noise on the quotient at the smallest ε
    // probed is ~2.4e-4 per unit of loss; 1e-3 leaves comfortable slack.
    const ABS_TOL: f32 = 1e-3;
    const REL_TOL: f32 = 0.05;
    // Central differences at ε, retrying smaller to step over any kink
    // that falls inside the wider probe interval.
    const EPSILONS: [f32; 3] = [1e-3, 5e-4, 2.5e-4];

    let fd_at = |model: &GraphSage, layer: usize, index: usize, eps: f32| -> f32 {
        let plus = model
            .nudged(layer, index, eps)
            .compute_gradients(&train_graph, view)
            .0;
        let minus = model
            .nudged(layer, index, -eps)
            .compute_gradients(&train_graph, view)
            .0;
        (plus - minus) / (2.0 * eps)
    };

    let mut checked = 0usize;
    let mut worst: (f32, usize, usize) = (0.0, 0, 0);
    for (layer, layer_grads) in grads.iter().enumerate() {
        let flat: Vec<f32> = layer_grads
            .w
            .data()
            .iter()
            .chain(layer_grads.b.iter())
            .copied()
            .collect();
        for (index, &analytic) in flat.iter().enumerate() {
            let mut best_rel = f32::INFINITY;
            let mut best_fd = f32::NAN;
            let mut passed = false;
            for &eps in &EPSILONS {
                let fd = fd_at(&model, layer, index, eps);
                let diff = (fd - analytic).abs();
                let scale = fd.abs().max(analytic.abs());
                let rel = diff / scale.max(ABS_TOL);
                if rel < best_rel {
                    best_rel = rel;
                    best_fd = fd;
                }
                if diff <= ABS_TOL + REL_TOL * scale {
                    passed = true;
                    break;
                }
            }
            if best_rel > worst.0 {
                worst = (best_rel, layer, index);
            }
            assert!(
                passed,
                "layer {layer} param {index}: analytic {analytic:.6e} vs FD {best_fd:.6e} \
                 (best rel err {best_rel:.3e})"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, model.param_count(), "probed every parameter");
    eprintln!(
        "gradcheck: {checked} parameters, worst rel err {:.3e} (layer {}, param {})",
        worst.0, worst.1, worst.2
    );
}

/// The data-parallel trainer applies one Adam step per epoch from the
/// *merged* gradient: per-graph gradients summed in fixed order, scaled by
/// `1/n`, with the epoch loss scaled the same way. This pins that merged
/// gradient against central differences of the merged loss, so the
/// reduction (not just each per-graph backward) is what gets
/// finite-difference-checked.
#[test]
fn merged_multi_graph_gradients_match_central_differences() {
    let program = tiny_program();
    let cdfg = Cdfg::build(&program, &CdfgConfig { bit_stride: 16 });
    let n = cdfg.node_count();
    let features = Matrix::from_vec(n, FEATURE_DIM, cdfg.feature_matrix());
    let graph = cdfg.preds_csr();
    let view = graph.view();

    // Three training graphs sharing the CDFG but with independent label
    // and mask draws — three distinct per-graph losses and gradients.
    let mut rng = Rng(0xAB1E);
    let tasks: Vec<(Vec<usize>, Vec<bool>)> = (0..3)
        .map(|_| {
            let labels = (0..n).map(|_| (rng.next() % 3) as usize).collect();
            let mut mask: Vec<bool> = (0..n).map(|_| !rng.next().is_multiple_of(3)).collect();
            mask[0] = true;
            (labels, mask)
        })
        .collect();
    let graphs: Vec<TrainGraph<'_>> = tasks
        .iter()
        .map(|(labels, mask)| TrainGraph {
            features: &features,
            graph,
            labels,
            mask,
        })
        .collect();

    let mut model = GraphSage::try_new(
        FEATURE_DIM,
        &SageConfig {
            hidden: 3,
            layers: 2,
            classes: 3,
            sample_size: 1,
            lr: 1e-2,
            epochs: 1,
            seed: 5,
        },
    )
    .expect("valid model config");

    // Off-kink nudge, as in the single-graph check.
    let counts = layer_param_counts(&model.compute_gradients(&graphs[0], view).1);
    for (layer, &count) in counts.iter().enumerate() {
        for index in 0..count {
            model = model.nudged(layer, index, 0.02 + 0.06 * rng.unit());
        }
    }

    // Merged loss and gradient exactly as the trainer computes them: sum
    // per-graph results in graph order, then scale by 1/n.
    let inv = 1.0 / graphs.len() as f32;
    let merged = |model: &GraphSage| -> (f32, Vec<glaive_nn::LinearGrads>) {
        let mut acc: Option<(f32, Vec<glaive_nn::LinearGrads>)> = None;
        for g in &graphs {
            let (loss, grads) = model.compute_gradients(g, view);
            match &mut acc {
                None => acc = Some((loss, grads)),
                Some((total, merged)) => {
                    *total += loss;
                    for (m, g) in merged.iter_mut().zip(&grads) {
                        m.w.add_assign(&g.w);
                        for (mb, gb) in m.b.iter_mut().zip(&g.b) {
                            *mb += gb;
                        }
                    }
                }
            }
        }
        let (mut loss, mut grads) = acc.expect("non-empty graph set");
        loss *= inv;
        for g in &mut grads {
            g.w.scale(inv);
            for b in &mut g.b {
                *b *= inv;
            }
        }
        (loss, grads)
    };

    const ABS_TOL: f32 = 1e-3;
    const REL_TOL: f32 = 0.05;
    const EPSILONS: [f32; 3] = [1e-3, 5e-4, 2.5e-4];

    let (_, grads) = merged(&model);
    let mut checked = 0usize;
    for (layer, layer_grads) in grads.iter().enumerate() {
        let flat: Vec<f32> = layer_grads
            .w
            .data()
            .iter()
            .chain(layer_grads.b.iter())
            .copied()
            .collect();
        for (index, &analytic) in flat.iter().enumerate() {
            let mut passed = false;
            let mut last_fd = f32::NAN;
            for &eps in &EPSILONS {
                let plus = merged(&model.nudged(layer, index, eps)).0;
                let minus = merged(&model.nudged(layer, index, -eps)).0;
                last_fd = (plus - minus) / (2.0 * eps);
                let diff = (last_fd - analytic).abs();
                let scale = last_fd.abs().max(analytic.abs());
                if diff <= ABS_TOL + REL_TOL * scale {
                    passed = true;
                    break;
                }
            }
            assert!(
                passed,
                "merged layer {layer} param {index}: analytic {analytic:.6e} vs FD {last_fd:.6e}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, model.param_count(), "probed every parameter");
}
