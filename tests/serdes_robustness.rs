//! Byte-level robustness of the persistent artifact formats.
//!
//! Both on-disk formats — `GLVFIT01` ground truth and `GLVCKPT1` campaign
//! checkpoints — carry a trailing FNV-1a checksum over the payload, and
//! their decoders verify it *before* parsing anything. FNV-1a folds each
//! input byte through `(h ^ b) * prime` with an odd (hence invertible)
//! multiplier, so changing any single byte always changes the digest:
//! every single-byte flip must be rejected, at every position. Likewise
//! every truncation must decode to a typed error, never a panic or a
//! silently wrong artifact.
//!
//! These tests exercise *every* byte position of real artifacts produced
//! by a small fault-injection campaign — not a hand-picked sample.

use glaive_faultsim::{Campaign, CampaignCheckpoint, CampaignConfig, GroundTruth};
use glaive_isa::{AluOp, Asm, Program, Reg};

/// A small program with enough sites for a multi-record artifact.
fn tiny_program() -> Program {
    let mut asm = Asm::new("serdes-robustness");
    asm.set_mem_words(2);
    asm.li(Reg(1), 11)
        .li(Reg(2), 4)
        .alu(AluOp::Add, Reg(3), Reg(1), Reg(2))
        .store(Reg(3), Reg(0), 0)
        .load(Reg(4), Reg(0), 0)
        .alu_imm(AluOp::Mul, Reg(4), Reg(4), 3)
        .out(Reg(4))
        .halt();
    asm.finish().expect("assembles")
}

fn tiny_truth() -> GroundTruth {
    let program = tiny_program();
    Campaign::try_new(
        &program,
        &[],
        CampaignConfig {
            bit_stride: 16,
            instances_per_site: 1,
            ..CampaignConfig::quick()
        },
    )
    .expect("valid config")
    .run()
}

#[test]
fn ground_truth_roundtrips() {
    let truth = tiny_truth();
    let bytes = truth.to_bytes();
    let back = GroundTruth::from_bytes(&bytes).expect("intact artifact decodes");
    assert_eq!(back.program_name(), truth.program_name());
    assert_eq!(back.records(), truth.records());
    assert_eq!(back.predicted_injections(), truth.predicted_injections());
    assert_eq!(back.golden(), truth.golden());
}

/// Any single flipped byte — magic, lengths, payload, or checksum — must
/// yield a typed decode error, at every one of the artifact's positions.
#[test]
fn ground_truth_rejects_every_single_byte_flip() {
    let bytes = tiny_truth().to_bytes();
    assert!(bytes.len() > 64, "artifact too small to be a real probe");
    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0xff] {
            let mut tampered = bytes.clone();
            tampered[pos] ^= flip;
            assert!(
                GroundTruth::from_bytes(&tampered).is_err(),
                "flip {flip:#04x} at byte {pos} was not rejected"
            );
        }
    }
}

/// Every proper prefix must fail to decode — no truncation length panics
/// or produces a partial artifact.
#[test]
fn ground_truth_rejects_every_truncation() {
    let bytes = tiny_truth().to_bytes();
    for len in 0..bytes.len() {
        assert!(
            GroundTruth::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes was not rejected"
        );
    }
}

fn tiny_checkpoint() -> CampaignCheckpoint {
    let truth = tiny_truth();
    let records: Vec<_> = truth
        .records()
        .iter()
        .enumerate()
        .map(|(i, r)| (i, *r))
        .collect();
    CampaignCheckpoint {
        fingerprint: 0x5EED_CAFE_F00D_1234,
        total: records.len() + 3,
        records,
    }
}

#[test]
fn checkpoint_roundtrips() {
    let ckpt = tiny_checkpoint();
    let back = CampaignCheckpoint::from_bytes(&ckpt.to_bytes()).expect("intact snapshot decodes");
    assert_eq!(back, ckpt);
}

/// A tampered checkpoint must read as *no checkpoint* (cold start), for a
/// flip at every byte position.
#[test]
fn checkpoint_rejects_every_single_byte_flip() {
    let bytes = tiny_checkpoint().to_bytes();
    assert!(bytes.len() > 48, "snapshot too small to be a real probe");
    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0xff] {
            let mut tampered = bytes.clone();
            tampered[pos] ^= flip;
            assert!(
                CampaignCheckpoint::from_bytes(&tampered).is_none(),
                "flip {flip:#04x} at byte {pos} was not rejected"
            );
        }
    }
}

/// Every proper prefix of a checkpoint reads as a cold start.
#[test]
fn checkpoint_rejects_every_truncation() {
    let bytes = tiny_checkpoint().to_bytes();
    for len in 0..bytes.len() {
        assert!(
            CampaignCheckpoint::from_bytes(&bytes[..len]).is_none(),
            "truncation to {len} bytes was not rejected"
        );
    }
}
