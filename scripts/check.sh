#!/usr/bin/env bash
# Offline CI gate: format, release build, and tests — all without network
# access or a Cargo registry cache (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> public API surface drift gate"
scripts/api_surface.sh | diff -u scripts/api_surface.txt - || {
  echo "public API surface drifted from scripts/api_surface.txt;"
  echo "if the change is intentional, regenerate it with:"
  echo "  scripts/api_surface.sh > scripts/api_surface.txt"
  exit 1
}

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc --offline --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> quick-mode smoke run (fig5b_speedup)"
GLAIVE_QUICK=1 cargo run -q --release --offline -p glaive-bench \
  --bin fig5b_speedup >/dev/null

echo "==> cross-ISA smoke run (cross_isa --quick: ISA-B sim -> cdfg -> predict)"
XISA_OUT="$(mktemp)"
GLAIVE_QUICK=1 cargo run -q --release --offline -p glaive-bench \
  --bin cross_isa -- --out "$XISA_OUT" >/dev/null
grep -q '"mean_spearman"' "$XISA_OUT" \
  || { echo "cross_isa wrote no ranking metrics"; exit 1; }
rm -f "$XISA_OUT"

echo "==> model-server smoke run (train --quick, serve, query, shutdown)"
SMOKE_DIR="$(mktemp -d)"
SMOKE_MODEL="$SMOKE_DIR/smoke.model"
SMOKE_LOG="$SMOKE_DIR/serve.log"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run -q --release --offline -p glaive-cli -- \
  train "$SMOKE_MODEL" lu --quick --stride 16 --instances 1 >/dev/null
cargo run -q --release --offline -p glaive-cli -- \
  serve "$SMOKE_MODEL" --addr 127.0.0.1:0 >"$SMOKE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^listening on //p' "$SMOKE_LOG" | head -n1)"
  [ -n "$ADDR" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SMOKE_LOG"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never reported its address"; cat "$SMOKE_LOG"; exit 1; }
cargo run -q --release --offline -p glaive-cli -- \
  query "$ADDR" lu --stride 16 --top 5 >/dev/null
# The same query under seeded fault injection: corrupted/short/dropped
# frames on the client connection must be retried, never mis-served.
GLAIVE_CHAOS_SEED=0xC4A05EED GLAIVE_CHAOS_RATE=0.0002 \
  cargo run -q --release --offline -p glaive-cli -- \
  query "$ADDR" lu --stride 16 --top 5 --patience 60 >/dev/null
# Budgeted protection set: the same query twice must render the same
# bytes — the greedy selector and the golden timing profile are both
# deterministic end to end.
cargo run -q --release --offline -p glaive-cli -- \
  budget "$ADDR" lu --stride 16 --overhead-pct 5 >"$SMOKE_DIR/budget1.txt"
cargo run -q --release --offline -p glaive-cli -- \
  budget "$ADDR" lu --stride 16 --overhead-pct 5 >"$SMOKE_DIR/budget2.txt"
cmp "$SMOKE_DIR/budget1.txt" "$SMOKE_DIR/budget2.txt" \
  || { echo "budget query was not deterministic"; exit 1; }
grep -q "protect " "$SMOKE_DIR/budget1.txt" \
  || { echo "budget query rendered no selection"; cat "$SMOKE_DIR/budget1.txt"; exit 1; }
cargo run -q --release --offline -p glaive-cli -- query "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"

echo "==> open-loop load smoke (64 pipelined clients, bit-identity enforced)"
# The loadgen process itself asserts zero protocol errors and that every
# non-Busy reply is bit-identical to serial inference — a non-zero exit
# here IS the failure signal. The tiny queue bound forces the admission
# path (Busy replies) to actually run.
LOAD_OUT="$SMOKE_DIR/bench4_smoke.json"
GLAIVE_QUICK=1 cargo run -q --release --offline -p glaive-bench \
  --bin loadgen -- --steps 64 --requests 3 --interval-ms 200 \
  --queue-bound 16 --out "$LOAD_OUT" >/dev/null
grep -q '"failures": 0' "$LOAD_OUT" \
  || { echo "load smoke recorded failures"; cat "$LOAD_OUT"; exit 1; }

echo "==> campaign fabric smoke run (coordinate + 2 workers, kill, --resume)"
# The coordinator is run from the prebuilt binary (not `cargo run`) so that
# SIGKILL hits the coordinator itself rather than a cargo wrapper.
GCLI="./target/release/glaive-cli"
FAB_DIR="$SMOKE_DIR/fabric"
mkdir -p "$FAB_DIR"
"$GCLI" campaign blackscholes --out "$FAB_DIR/serial.bin" >/dev/null

start_coordinator() {
  GLAIVE_CACHE_DIR="$FAB_DIR" "$GCLI" campaign coordinate blackscholes \
    --workers-listen 127.0.0.1:0 --chunk 8 --checkpoint-interval 64 \
    --resume --out "$FAB_DIR/dist.bin" >"$1" 2>&1 &
  COORD_PID=$!
  CADDR=""
  for _ in $(seq 1 100); do
    CADDR="$(sed -n 's/^coordinating on //p' "$1" | head -n1)"
    [ -n "$CADDR" ] && break
    kill -0 "$COORD_PID" 2>/dev/null || { cat "$1"; exit 1; }
    sleep 0.1
  done
  [ -n "$CADDR" ] || { echo "coordinator never reported its address"; cat "$1"; exit 1; }
}

# First attempt: let the fleet make checkpointed progress, then SIGKILL the
# coordinator mid-campaign.
start_coordinator "$FAB_DIR/coord1.log"
"$GCLI" campaign worker --connect "$CADDR" >/dev/null 2>&1 &
W1=$!
"$GCLI" campaign worker --connect "$CADDR" >/dev/null 2>&1 &
W2=$!
for _ in $(seq 1 200); do
  ls "$FAB_DIR"/ckpt-*.bin >/dev/null 2>&1 && break
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$COORD_PID" 2>/dev/null || true
wait "$COORD_PID" 2>/dev/null || true
wait "$W1" 2>/dev/null || true
wait "$W2" 2>/dev/null || true

# Second attempt resumes from the checkpoint and must complete with a
# ground truth byte-identical to the serial campaign.
start_coordinator "$FAB_DIR/coord2.log"
"$GCLI" campaign worker --connect "$CADDR" >/dev/null 2>&1 &
W1=$!
"$GCLI" campaign worker --connect "$CADDR" >/dev/null 2>&1 &
W2=$!
wait "$COORD_PID" || { cat "$FAB_DIR/coord2.log"; exit 1; }
wait "$W1" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
cmp "$FAB_DIR/serial.bin" "$FAB_DIR/dist.bin" \
  || { echo "distributed ground truth diverged from serial"; exit 1; }

echo "==> chaos smoke run (coordinate + 2 chaos workers, byte-compare vs serial)"
# A fixed seed makes the fault schedule replayable: delays, short ops,
# corrupted bytes and hard disconnects on every worker connection, yet
# the merged ground truth must still equal the serial bytes exactly.
# The rate is deliberately lower than the in-process soak's: every CLI
# session re-receives the multi-KB Welcome job frame, so a high per-byte
# rate would kill most sessions at the handshake and stretch the smoke
# from seconds to hours (progress keeps resetting the patience budget).
CHAOS_DIR="$SMOKE_DIR/chaos"
mkdir -p "$CHAOS_DIR"
GLAIVE_CACHE_DIR="$CHAOS_DIR" "$GCLI" campaign coordinate blackscholes \
  --workers-listen 127.0.0.1:0 --chunk 64 --out "$CHAOS_DIR/chaos.bin" \
  >"$CHAOS_DIR/coord.log" 2>&1 &
COORD_PID=$!
CADDR=""
for _ in $(seq 1 100); do
  CADDR="$(sed -n 's/^coordinating on //p' "$CHAOS_DIR/coord.log" | head -n1)"
  [ -n "$CADDR" ] && break
  kill -0 "$COORD_PID" 2>/dev/null || { cat "$CHAOS_DIR/coord.log"; exit 1; }
  sleep 0.1
done
[ -n "$CADDR" ] || { echo "chaos coordinator never reported its address"; exit 1; }
GLAIVE_CHAOS_SEED=0xC4A05EED GLAIVE_CHAOS_RATE=0.0002 "$GCLI" \
  campaign worker --connect "$CADDR" --patience 120 >"$CHAOS_DIR/w1.log" 2>&1 &
W1=$!
GLAIVE_CHAOS_SEED=0xC4A05EED GLAIVE_CHAOS_RATE=0.0002 "$GCLI" \
  campaign worker --connect "$CADDR" --patience 120 >"$CHAOS_DIR/w2.log" 2>&1 &
W2=$!
wait "$COORD_PID" || { cat "$CHAOS_DIR/coord.log"; exit 1; }
wait "$W1" 2>/dev/null || true
wait "$W2" 2>/dev/null || true
cmp "$FAB_DIR/serial.bin" "$CHAOS_DIR/chaos.bin" \
  || { echo "chaos ground truth diverged from serial"; exit 1; }
grep -q "^chaos: injected" "$CHAOS_DIR/w1.log" "$CHAOS_DIR/w2.log" \
  || { echo "workers reported no injected faults; chaos smoke is vacuous"; exit 1; }

echo "==> chaos soak (chaos_soak --quick: fleet + serve under seeded faults)"
GLAIVE_QUICK=1 cargo run -q --release --offline -p glaive-bench \
  --bin chaos_soak -- --out "$CHAOS_DIR/BENCH_7.json" >/dev/null
grep -q '"identical": true' "$CHAOS_DIR/BENCH_7.json" \
  || { echo "chaos soak reported a divergence"; exit 1; }

echo "==> kernel microbench smoke (kernel_bench --smoke: GFLOP/s + thread identity)"
KB_OUT="$SMOKE_DIR/kernel_bench.json"
cargo run -q --release --offline -p glaive-bench \
  --bin kernel_bench -- --smoke --out "$KB_OUT" >/dev/null
grep -q '"gflops"' "$KB_OUT" \
  || { echo "kernel_bench wrote no throughput records"; cat "$KB_OUT"; exit 1; }
grep -q '"identical": true' "$KB_OUT" \
  || { echo "thread-count identity check failed"; cat "$KB_OUT"; exit 1; }
if grep -q '"gflops": 0\.000' "$KB_OUT"; then
  echo "kernel_bench measured 0 GFLOP/s; the microbench is vacuous"
  cat "$KB_OUT"
  exit 1
fi

echo "==> data-parallel training determinism smoke (2 threads vs serial, byte-compare)"
# --no-cache so the second run cannot satisfy itself from the model cache:
# both models must really be trained, then match byte-for-byte.
"$GCLI" train "$SMOKE_DIR/serial.model" lu --quick --stride 16 --instances 1 \
  --train-threads 1 --no-cache >/dev/null
"$GCLI" train "$SMOKE_DIR/threaded.model" lu --quick --stride 16 --instances 1 \
  --train-threads 2 --no-cache >/dev/null
cmp "$SMOKE_DIR/serial.model" "$SMOKE_DIR/threaded.model" \
  || { echo "2-thread training diverged from serial"; exit 1; }

echo "All checks passed."
