#!/usr/bin/env bash
# Offline CI gate: format, release build, and tests — all without network
# access or a Cargo registry cache (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "All checks passed."
