#!/usr/bin/env bash
# Offline CI gate: format, release build, and tests — all without network
# access or a Cargo registry cache (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc --offline --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> quick-mode smoke run (fig5b_speedup)"
GLAIVE_QUICK=1 cargo run -q --release --offline -p glaive-bench \
  --bin fig5b_speedup >/dev/null

echo "==> model-server smoke run (train --quick, serve, query, shutdown)"
SMOKE_DIR="$(mktemp -d)"
SMOKE_MODEL="$SMOKE_DIR/smoke.model"
SMOKE_LOG="$SMOKE_DIR/serve.log"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cargo run -q --release --offline -p glaive-cli -- \
  train "$SMOKE_MODEL" lu --quick --stride 16 --instances 1 >/dev/null
cargo run -q --release --offline -p glaive-cli -- \
  serve "$SMOKE_MODEL" --addr 127.0.0.1:0 >"$SMOKE_LOG" 2>&1 &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
  ADDR="$(sed -n 's/^listening on //p' "$SMOKE_LOG" | head -n1)"
  [ -n "$ADDR" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SMOKE_LOG"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "server never reported its address"; cat "$SMOKE_LOG"; exit 1; }
cargo run -q --release --offline -p glaive-cli -- \
  query "$ADDR" lu --stride 16 --top 5 >/dev/null
cargo run -q --release --offline -p glaive-cli -- query "$ADDR" --shutdown >/dev/null
wait "$SERVE_PID"

echo "All checks passed."
