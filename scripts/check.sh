#!/usr/bin/env bash
# Offline CI gate: format, release build, and tests — all without network
# access or a Cargo registry cache (the workspace has no external deps).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --offline --workspace --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc --offline --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> quick-mode smoke run (fig5b_speedup)"
GLAIVE_QUICK=1 cargo run -q --release --offline -p glaive-bench \
  --bin fig5b_speedup >/dev/null

echo "All checks passed."
