#!/usr/bin/env bash
# Prints the workspace's public API surface — every `pub` item declaration
# in every crate — in a stable, diffable form. Pure text processing (no
# build, no network); the committed snapshot lives at
# scripts/api_surface.txt and scripts/check.sh fails when they diverge,
# so public-API changes are always a deliberate, reviewed act:
#
#   scripts/api_surface.sh > scripts/api_surface.txt
#
# The listing is names-only (truncated at the first `;(){=`), so bodies,
# fields and where-clauses can change freely; adding, removing or renaming
# a public item is what trips the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

for src in crates/*/src; do
  crate="$(basename "$(dirname "$src")")"
  grep -rhoE \
    '^[[:space:]]*pub (async )?(unsafe )?(fn|struct|enum|trait|const|static|type|mod|use) [^;({=<]*' \
    "$src" \
    | sed -E 's/^[[:space:]]+//; s/[[:space:]]+/ /g; s/ $//' \
    | LC_ALL=C sort -u \
    | sed "s|^|$crate: |"
done
